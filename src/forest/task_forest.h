// The mixing forest: the paper's demand-driven task graph for MDST.
//
// Given a base mixing graph and a droplet demand D, the forest instantiates
// every (1:1) mix-split needed to emit D target droplets while reusing the
// second output droplet of every mix-split ("waste" in single-pass mixing) as
// an operand elsewhere. For D = p * 2^d the forest wastes nothing.
//
// Formulation (equivalent to the paper's component-tree construction, see
// DESIGN.md section 2): need(root) = D; each execution of a node yields two
// droplets, so execs(v) = ceil(need(v) / 2); every consumer edge adds
// execs(consumer) to the operand node's need. Instance k of a node consumes
// droplet #k allocated from its operand's production sequence, and droplet j
// is produced by instance floor(j / 2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mixgraph/graph.h"

namespace dmf::forest {

/// Index of a mix-split instance (task) inside a TaskForest.
using TaskId = std::uint32_t;

/// Sentinel: "operand is a dispensed input droplet" / "droplet has no
/// consumer task".
inline constexpr TaskId kNoTask = 0xFFFFFFFFu;

/// What happens to one of the two droplets a mix-split emits.
enum class DropletFate : std::uint8_t {
  kConsumed,  ///< used as an operand of another mix-split
  kTarget,    ///< emitted as a target droplet of the demand
  kWaste,     ///< discarded to a waste reservoir
};

/// One output droplet of a task.
struct OutputDroplet {
  DropletFate fate = DropletFate::kWaste;
  /// Consuming task when fate == kConsumed, kNoTask otherwise.
  TaskId consumer = kNoTask;
};

/// SRS node classification (paper section 4.2.2): where the two operands of a
/// mix-split come from. Stalling a Type-A node parks two droplets in storage,
/// Type-B one, Type-C none (reservoir dispensing needs no storage).
enum class OperandClass : std::uint8_t {
  kTypeA,  ///< both operands produced by other mix-splits
  kTypeB,  ///< exactly one operand is a dispensed input droplet
  kTypeC,  ///< both operands are dispensed input droplets
};

/// One (1:1) mix-split instance.
struct Task {
  /// Base-graph mix node this instance executes.
  mixgraph::NodeId node = mixgraph::kNoNode;
  /// Which execution of that node (0-based).
  std::uint32_t instance = 0;
  /// Paper-figure level of the node (root instances at level d).
  unsigned level = 0;
  /// Component mixing tree id, 1-based (T1, T2, ...).
  std::uint32_t tree = 0;
  /// Producer of the left/right operand droplet; kNoTask when the operand is
  /// dispensed from a reservoir (the base-graph child is a leaf).
  TaskId depLeft = kNoTask;
  TaskId depRight = kNoTask;
  /// The two output droplets, in production order.
  OutputDroplet out[2];
  /// Operand classification for SRS.
  OperandClass operandClass = OperandClass::kTypeC;
};

/// Aggregate forest statistics — the paper's Tms, W, I[], I, |F| metrics.
struct ForestStats {
  std::uint64_t mixSplits = 0;                ///< Tms
  std::uint64_t waste = 0;                    ///< W
  std::uint64_t inputTotal = 0;               ///< I
  std::vector<std::uint64_t> inputPerFluid;   ///< I[] per fluid
  std::uint64_t componentTrees = 0;           ///< |F| = ceil(D/2)
  std::uint64_t targets = 0;                  ///< the demand D
};

/// Demand injected at an arbitrary mix node of the base graph. The classic
/// forest is the special case where every demand sits at a root; error
/// recovery injects demand mid-graph — a lost or corrupted droplet of node v
/// is exactly one extra unit of need(v) (see DESIGN.md §11).
struct NodeDemand {
  mixgraph::NodeId node = mixgraph::kNoNode;
  std::uint64_t count = 0;
};

/// The instantiated mixing forest for one (graph, demand) pair.
///
/// The construction is deterministic: the same graph and demand always yield
/// the same forest, so Tms, W and I are unique given the base algorithm, the
/// ratio, and D (paper section 4.2).
class TaskForest {
 public:
  /// Builds the forest for a single-target graph. `graph` must be finalized
  /// and outlive the forest. Throws std::invalid_argument if demand == 0 or
  /// the graph is not finalized; std::overflow_error if the task count
  /// exceeds TaskId range.
  TaskForest(const mixgraph::MixingGraph& graph, std::uint64_t demand);

  /// Multi-target form: one demand per graph root (aligned with
  /// graph.roots()). Every demand must be positive.
  TaskForest(const mixgraph::MixingGraph& graph,
             std::vector<std::uint64_t> demands);

  /// Repair-forest form: demand injected at arbitrary mix nodes (droplets of
  /// those nodes are emitted as targets). Duplicate nodes merge their counts
  /// at the first occurrence. Throws std::invalid_argument on an empty list,
  /// a zero count, an out-of-range id, or a leaf node (a leaf droplet is a
  /// reservoir dispense, not a mix product).
  TaskForest(const mixgraph::MixingGraph& graph,
             const std::vector<NodeDemand>& needs);

  [[nodiscard]] const mixgraph::MixingGraph& graph() const { return *graph_; }
  /// Total demand over all targets.
  [[nodiscard]] std::uint64_t demand() const;
  /// Per-demand-point counts (aligned with demandNodes(); size 1 for
  /// single-target forests).
  [[nodiscard]] const std::vector<std::uint64_t>& demands() const {
    return demands_;
  }
  /// The graph nodes that emit target droplets, in demand order. For the
  /// classic constructors this equals graph().roots().
  [[nodiscard]] const std::vector<mixgraph::NodeId>& demandNodes() const {
    return demandNodes_;
  }

  [[nodiscard]] std::size_t taskCount() const { return tasks_.size(); }
  [[nodiscard]] const Task& task(TaskId id) const { return tasks_[id]; }
  [[nodiscard]] const std::vector<Task>& tasks() const { return tasks_; }

  // ---- structure-of-arrays views ----------------------------------------
  // Hot-loop mirrors of the Task fields, built once at construction so the
  // schedulers and storage counters sweep flat parallel arrays instead of
  // chasing 48-byte structs. Indexing: per-task arrays by TaskId; per-droplet
  // arrays by 2 * TaskId + slot.

  /// Paper-figure level per task.
  [[nodiscard]] const std::vector<unsigned>& taskLevels() const {
    return levels_;
  }
  /// Left/right operand producer per task (kNoTask for dispenses).
  [[nodiscard]] const std::vector<TaskId>& depLefts() const {
    return depLeft_;
  }
  [[nodiscard]] const std::vector<TaskId>& depRights() const {
    return depRight_;
  }
  /// Consumer of droplet (2 * id + slot); kNoTask unless consumed.
  [[nodiscard]] const std::vector<TaskId>& outConsumers() const {
    return outConsumer_;
  }
  /// DropletFate of droplet (2 * id + slot), as its underlying byte.
  [[nodiscard]] const std::vector<std::uint8_t>& outFates() const {
    return outFate_;
  }
  /// Number of task-produced operands per task (0..2) — the ready-queue
  /// pending count every list scheduler starts from.
  [[nodiscard]] const std::vector<std::uint8_t>& initialPending() const {
    return initialPending_;
  }
  /// Number of consumed output droplets per task (0..2).
  [[nodiscard]] const std::vector<std::uint8_t>& consumedOutCounts() const {
    return consumedOuts_;
  }

  /// Depth of the forest — component-tree roots sit at this level.
  [[nodiscard]] unsigned depth() const;

  /// Forest statistics (computed once at construction).
  [[nodiscard]] const ForestStats& stats() const { return stats_; }

  /// Number of executions of base-graph node `v` in the forest.
  [[nodiscard]] std::uint64_t executions(mixgraph::NodeId v) const {
    return execs_[v];
  }

  /// Tasks with no task-produced operands (ready at cycle 1).
  [[nodiscard]] std::vector<TaskId> initialReady() const;

  /// A display label in the style of the paper's figures: "m<tree>.<node>"
  /// with the component tree first.
  [[nodiscard]] std::string taskLabel(TaskId id) const;

  /// Cheap structural self-check (used by tests): dependency wiring is
  /// acyclic and consistent with the out[] droplet fates. Throws
  /// std::logic_error on violation.
  void validateOrThrow() const;

  /// Graphviz rendering in the style of the paper's Fig. 1/Fig. 2: one node
  /// per mix-split instance, clustered by component tree; green edges for
  /// in-tree droplet flow, brown for waste reuse across trees, red marks for
  /// wasted droplets and double circles for target emissions.
  [[nodiscard]] std::string toDot() const;

 private:
  void build();
  void buildSoaViews();

  const mixgraph::MixingGraph* graph_;
  std::vector<std::uint64_t> demands_;          // per demand point
  std::vector<mixgraph::NodeId> demandNodes_;   // aligned with demands_
  std::vector<std::uint64_t> execs_;            // per base-graph node
  std::vector<Task> tasks_;
  // SoA mirrors of tasks_ (see the accessor block above).
  std::vector<unsigned> levels_;
  std::vector<TaskId> depLeft_;
  std::vector<TaskId> depRight_;
  std::vector<TaskId> outConsumer_;
  std::vector<std::uint8_t> outFate_;
  std::vector<std::uint8_t> initialPending_;
  std::vector<std::uint8_t> consumedOuts_;
  ForestStats stats_;
};

}  // namespace dmf::forest
