#include "chip/simulation.h"

#include <algorithm>
#include <map>

#include "chip/error.h"

namespace dmf::chip {

SimulationResult simulateTrace(const Layout& layout,
                               const ExecutionTrace& trace,
                               TimedRouterOptions options) {
  // Group the trace's moves by cycle; each group is one concurrent phase.
  std::map<unsigned, std::vector<PhaseMove>> phases;
  for (std::size_t i = 0; i < trace.moves.size(); ++i) {
    const Move& m = trace.moves[i];
    if (m.from == m.to) continue;  // zero-length hand-off inside one mixer
    phases[m.cycle].push_back(PhaseMove{layout.module(m.from).port(),
                                        layout.module(m.to).port(),
                                        static_cast<std::uint32_t>(i)});
  }

  TimedRouter router(layout, options);
  SimulationResult result;
  result.phases.reserve(phases.size());
  for (auto& [cycle, moves] : phases) {
    SimulatedPhase phase;
    phase.cycle = cycle;
    try {
      phase.routing = router.routePhase(std::move(moves));
    } catch (const ChipError& e) {
      // Re-anchor the router's step-level context to the mix cycle whose
      // transport phase failed — the coordinate recovery reasons in.
      throw ChipError("simulate", cycle, e.what(), e.droplet());
    }
    result.totalActuations += phase.routing.totalActuations;
    result.totalSteps += phase.routing.makespan;
    result.maxPhaseMakespan =
        std::max(result.maxPhaseMakespan, phase.routing.makespan);
    result.phases.push_back(std::move(phase));
  }
  return result;
}

}  // namespace dmf::chip
