#include "workload/ratio_corpus.h"

#include <bit>
#include <stdexcept>

namespace dmf::workload {

namespace {

void enumerate(std::uint64_t remaining, std::uint64_t maxPart,
               std::size_t minParts, std::size_t maxParts,
               std::vector<std::uint64_t>& prefix,
               std::vector<Ratio>& out) {
  if (remaining == 0) {
    if (prefix.size() >= minParts && prefix.size() >= 2) {
      out.emplace_back(prefix);
    }
    return;
  }
  if (prefix.size() >= maxParts) return;
  // Parts are chosen non-increasing; the remaining budget must still be
  // coverable by the remaining slots at the chosen part size.
  const std::size_t slotsLeft = maxParts - prefix.size();
  for (std::uint64_t part = std::min(maxPart, remaining); part >= 1; --part) {
    if (part * static_cast<std::uint64_t>(slotsLeft) < remaining) break;
    prefix.push_back(part);
    enumerate(remaining - part, part, minParts, maxParts, prefix, out);
    prefix.pop_back();
  }
}

}  // namespace

std::vector<Ratio> partitionCorpus(std::uint64_t sum, std::size_t minParts,
                                   std::size_t maxParts) {
  if (sum < 2 || !std::has_single_bit(sum)) {
    throw std::invalid_argument(
        "partitionCorpus: sum must be a power of two >= 2");
  }
  if (minParts < 2 || minParts > maxParts || maxParts > sum) {
    throw std::invalid_argument("partitionCorpus: bad part bounds");
  }
  std::vector<Ratio> out;
  std::vector<std::uint64_t> prefix;
  enumerate(sum, sum, minParts, maxParts, prefix, out);
  return out;
}

const std::vector<Ratio>& evaluationCorpus() {
  static const std::vector<Ratio> kCorpus = partitionCorpus(32, 2, 12);
  return kCorpus;
}

std::uint64_t countPartitions(std::uint64_t sum, std::size_t parts) {
  if (parts == 0 || parts > sum) return 0;
  // p(n, k): partitions of n into exactly k parts; p(n,k) = p(n-1,k-1) +
  // p(n-k,k).
  std::vector<std::vector<std::uint64_t>> p(
      sum + 1, std::vector<std::uint64_t>(parts + 1, 0));
  p[0][0] = 1;
  for (std::uint64_t n = 1; n <= sum; ++n) {
    for (std::size_t k = 1; k <= parts && k <= n; ++k) {
      p[n][k] = p[n - 1][k - 1] + p[n - k][k];
    }
  }
  return p[sum][parts];
}

}  // namespace dmf::workload
