#include "mixgraph/graph.h"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace dmf::mixgraph {

MixingGraph::MixingGraph(Ratio ratio) {
  targets_.push_back(std::move(ratio));
}

MixingGraph::MixingGraph(std::vector<Ratio> targets)
    : targets_(std::move(targets)) {
  if (targets_.empty()) {
    throw std::invalid_argument("MixingGraph: no target ratios");
  }
  for (std::size_t i = 1; i < targets_.size(); ++i) {
    if (targets_[i].fluidCount() != targets_.front().fluidCount()) {
      throw std::invalid_argument(
          "MixingGraph: targets must share one fluid space");
    }
    if (targets_[i].accuracy() != targets_.front().accuracy()) {
      throw std::invalid_argument(
          "MixingGraph: targets must share one accuracy level");
    }
  }
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    for (std::size_t j = i + 1; j < targets_.size(); ++j) {
      if (MixtureValue::target(targets_[i]) ==
          MixtureValue::target(targets_[j])) {
        throw std::invalid_argument(
            "MixingGraph: duplicate target composition " +
            targets_[i].toString());
      }
    }
  }
}

NodeId MixingGraph::addLeaf(std::size_t fluid) {
  if (finalized_) {
    throw std::logic_error("MixingGraph: cannot add nodes after finalize()");
  }
  nodes_.push_back(Node{
      MixtureValue::pure(fluid, targets_.front().fluidCount()), kNoNode,
      kNoNode, 0});
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId MixingGraph::addMix(NodeId left, NodeId right) {
  if (finalized_) {
    throw std::logic_error("MixingGraph: cannot add nodes after finalize()");
  }
  if (left >= nodes_.size() || right >= nodes_.size()) {
    throw std::invalid_argument("MixingGraph::addMix: bad child id");
  }
  nodes_.push_back(Node{
      MixtureValue::mix(nodes_[left].value, nodes_[right].value), left, right,
      0});
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId MixingGraph::finalize(NodeId root) {
  if (targets_.size() != 1) {
    throw std::invalid_argument(
        "MixingGraph::finalize: multi-target graph needs one root per target");
  }
  return finalize(std::vector<NodeId>{root}).front();
}

std::vector<NodeId> MixingGraph::finalize(std::vector<NodeId> roots) {
  if (finalized_) {
    throw std::logic_error("MixingGraph: finalize() called twice");
  }
  if (roots.size() != targets_.size()) {
    throw std::invalid_argument(
        "MixingGraph::finalize: need exactly one root per target");
  }
  for (NodeId root : roots) {
    if (root >= nodes_.size()) {
      throw std::invalid_argument("MixingGraph::finalize: bad root id");
    }
  }

  // Prune nodes unreachable from every root (builders that rewire, e.g.
  // MTCS sharing, can leave orphans behind).
  std::vector<bool> reachable(nodes_.size(), false);
  std::deque<NodeId> work;
  for (NodeId root : roots) {
    if (!reachable[root]) {
      reachable[root] = true;
      work.push_back(root);
    }
  }
  while (!work.empty()) {
    const Node& n = nodes_[work.front()];
    work.pop_front();
    if (!n.isLeaf()) {
      for (NodeId c : {n.left, n.right}) {
        if (!reachable[c]) {
          reachable[c] = true;
          work.push_back(c);
        }
      }
    }
  }
  std::vector<NodeId> remap(nodes_.size(), kNoNode);
  std::vector<Node> kept;
  kept.reserve(nodes_.size());
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (reachable[id]) {
      remap[id] = static_cast<NodeId>(kept.size());
      kept.push_back(std::move(nodes_[id]));
    }
  }
  for (Node& n : kept) {
    if (!n.isLeaf()) {
      n.left = remap[n.left];
      n.right = remap[n.right];
    }
  }
  nodes_ = std::move(kept);
  roots_.clear();
  for (NodeId root : roots) {
    roots_.push_back(remap[root]);
  }
  for (std::size_t i = 0; i < roots_.size(); ++i) {
    for (std::size_t j = i + 1; j < roots_.size(); ++j) {
      if (roots_[i] == roots_[j]) {
        throw std::invalid_argument("MixingGraph::finalize: duplicate roots");
      }
    }
  }

  // Levels: roots start at accuracy d (all targets share it); level(v) =
  // min over consumers(level) - 1, i.e. d minus the longest path to any
  // root. A root that is another target's intermediate ends up below d.
  const unsigned d = targets_.front().accuracy();
  std::vector<unsigned> level(nodes_.size(), d);
  // Process ids in reverse creation order: builders create children before
  // parents, so consumers of v always have ids greater than v.
  for (NodeId id = static_cast<NodeId>(nodes_.size()); id-- > 0;) {
    const Node& n = nodes_[id];
    if (n.isLeaf()) continue;
    for (NodeId c : {n.left, n.right}) {
      if (c >= id) {
        throw std::logic_error(
            "MixingGraph: children must be created before parents");
      }
      if (level[id] == 0) {
        throw std::logic_error("MixingGraph: path to root longer than depth");
      }
      level[c] = std::min(level[c], level[id] - 1);
    }
  }
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    nodes_[id].level = level[id];
  }

  consumers_.assign(nodes_.size(), {});
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    if (!n.isLeaf()) {
      consumers_[n.left].push_back(id);
      consumers_[n.right].push_back(id);
    }
  }

  finalized_ = true;
  validateOrThrow();
  return roots_;
}

NodeId MixingGraph::root() const {
  requireFinalized("root");
  return roots_.front();
}

const std::vector<NodeId>& MixingGraph::roots() const {
  requireFinalized("roots");
  return roots_;
}

const Node& MixingGraph::node(NodeId id) const {
  if (id >= nodes_.size()) {
    throw std::invalid_argument("MixingGraph::node: bad id");
  }
  return nodes_[id];
}

std::size_t MixingGraph::leafCount() const {
  requireFinalized("leafCount");
  return static_cast<std::size_t>(
      std::count_if(nodes_.begin(), nodes_.end(),
                    [](const Node& n) { return n.isLeaf(); }));
}

std::size_t MixingGraph::internalCount() const {
  requireFinalized("internalCount");
  return nodes_.size() - leafCount();
}

unsigned MixingGraph::depth() const {
  requireFinalized("depth");
  return targets_.front().accuracy();
}

bool MixingGraph::isTree() const {
  requireFinalized("isTree");
  return std::all_of(consumers_.begin(), consumers_.end(),
                     [](const std::vector<NodeId>& c) { return c.size() <= 1; });
}

std::vector<NodeId> MixingGraph::nodesByLevelDesc() const {
  requireFinalized("nodesByLevelDesc");
  std::vector<NodeId> order(nodes_.size());
  for (NodeId id = 0; id < nodes_.size(); ++id) order[id] = id;
  std::stable_sort(order.begin(), order.end(), [this](NodeId a, NodeId b) {
    return nodes_[a].level > nodes_[b].level;
  });
  return order;
}

const std::vector<std::vector<NodeId>>& MixingGraph::consumers() const {
  requireFinalized("consumers");
  return consumers_;
}

std::string MixingGraph::toDot() const {
  requireFinalized("toDot");
  std::string out = "digraph mixing {\n  rankdir=BT;\n";
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    const bool isRoot =
        std::find(roots_.begin(), roots_.end(), id) != roots_.end();
    out += "  n" + std::to_string(id) + " [label=\"" + n.value.toString() +
           "\\nL" + std::to_string(n.level) + "\"" +
           (n.isLeaf() ? ", shape=box" : "") +
           (isRoot ? ", shape=doublecircle" : "") + "];\n";
  }
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    if (!n.isLeaf()) {
      out += "  n" + std::to_string(n.left) + " -> n" + std::to_string(id) +
             ";\n";
      out += "  n" + std::to_string(n.right) + " -> n" + std::to_string(id) +
             ";\n";
    }
  }
  out += "}\n";
  return out;
}

void MixingGraph::requireFinalized(const char* what) const {
  if (!finalized_) {
    throw std::logic_error(std::string("MixingGraph::") + what +
                           ": graph not finalized");
  }
}

void MixingGraph::validateOrThrow() const {
  if (nodes_.empty()) {
    throw std::logic_error("MixingGraph: empty graph");
  }
  for (std::size_t i = 0; i < roots_.size(); ++i) {
    if (nodes_[roots_[i]].value != MixtureValue::target(targets_[i])) {
      throw std::logic_error("MixingGraph: root composition " +
                             nodes_[roots_[i]].value.toString() +
                             " does not match target " +
                             MixtureValue::target(targets_[i]).toString());
    }
  }
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    if (n.isLeaf()) {
      if (!n.value.isPure()) {
        throw std::logic_error("MixingGraph: leaf with mixed composition");
      }
      continue;
    }
    if (n.value !=
        MixtureValue::mix(nodes_[n.left].value, nodes_[n.right].value)) {
      throw std::logic_error("MixingGraph: node composition inconsistent");
    }
    for (NodeId c : {n.left, n.right}) {
      if (nodes_[c].level >= n.level) {
        throw std::logic_error("MixingGraph: level does not decrease on edge");
      }
    }
  }
  // Single-target graphs keep the classic invariant "root sits at level d";
  // in a multi-target graph a root may be another target's intermediate.
  if (targets_.size() == 1 &&
      nodes_[roots_.front()].level != targets_.front().accuracy()) {
    throw std::logic_error("MixingGraph: root level mismatch");
  }
}

}  // namespace dmf::mixgraph
