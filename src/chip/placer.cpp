#include "chip/placer.h"

#include <cmath>
#include <random>
#include <stdexcept>

namespace dmf::chip {

FlowMatrix flowFromTrace(const ExecutionTrace& trace,
                         std::size_t moduleCount) {
  FlowMatrix flow(moduleCount, std::vector<double>(moduleCount, 0.0));
  for (const Move& move : trace.moves) {
    if (move.from == move.to) continue;
    flow[move.from][move.to] += 1.0;
    flow[move.to][move.from] += 1.0;
  }
  return flow;
}

double placementCost(const Layout& layout, const FlowMatrix& flow) {
  if (flow.size() != layout.moduleCount()) {
    throw std::invalid_argument("placementCost: flow matrix size mismatch");
  }
  double cost = 0.0;
  for (ModuleId a = 0; a < layout.moduleCount(); ++a) {
    for (ModuleId b = static_cast<ModuleId>(a + 1); b < layout.moduleCount();
         ++b) {
      cost += flow[a][b] *
              manhattan(layout.module(a).port(), layout.module(b).port());
    }
  }
  return cost;
}

namespace {

// Rebuilds a Layout from module descriptors (positions already legal).
Layout materialize(int width, int height, const std::vector<Module>& modules) {
  Layout layout(width, height);
  for (const Module& m : modules) {
    layout.add(m);
  }
  return layout;
}

// Candidate placements must keep one free cell around every neighbour (the
// droplet-segregation spacing); flush modules can wall ports in and make the
// layout unroutable.
bool overlapsAny(const std::vector<Module>& modules, std::size_t self,
                 const Module& candidate) {
  for (std::size_t i = 0; i < modules.size(); ++i) {
    if (i == self) continue;
    const Module& other = modules[i];
    const bool apartX =
        candidate.origin.x + candidate.width < other.origin.x ||
        other.origin.x + other.width < candidate.origin.x;
    const bool apartY =
        candidate.origin.y + candidate.height < other.origin.y ||
        other.origin.y + other.height < candidate.origin.y;
    if (!apartX && !apartY) return true;
  }
  return false;
}

double pairCost(const std::vector<Module>& modules, std::size_t self,
                const FlowMatrix& flow) {
  double cost = 0.0;
  const Cell port = modules[self].port();
  for (std::size_t i = 0; i < modules.size(); ++i) {
    if (i == self) continue;
    cost += flow[self][i] * manhattan(port, modules[i].port());
  }
  return cost;
}

}  // namespace

Layout annealPlacement(const Layout& initial, const FlowMatrix& flow,
                       const AnnealOptions& options) {
  if (flow.size() != initial.moduleCount()) {
    throw std::invalid_argument("annealPlacement: flow matrix size mismatch");
  }
  std::vector<Module> current = initial.modules();
  std::vector<Module> best = current;
  double currentCost = placementCost(initial, flow);
  double bestCost = currentCost;

  std::mt19937_64 rng(options.seed);
  double temperature =
      std::max(1.0, currentCost * options.initialTemperature);
  const unsigned coolEvery = std::max(1u, options.iterations / 100);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);

  for (unsigned iter = 0; iter < options.iterations; ++iter) {
    const std::size_t pick = rng() % current.size();
    Module candidate = current[pick];
    const int maxX = initial.width() - candidate.width;
    const int maxY = initial.height() - candidate.height;
    candidate.origin =
        Cell{static_cast<int>(rng() % static_cast<unsigned>(maxX + 1)),
             static_cast<int>(rng() % static_cast<unsigned>(maxY + 1))};
    if (overlapsAny(current, pick, candidate)) continue;

    const double before = pairCost(current, pick, flow);
    const Module saved = current[pick];
    current[pick] = candidate;
    const double after = pairCost(current, pick, flow);
    const double delta = after - before;
    if (delta <= 0.0 || uniform(rng) < std::exp(-delta / temperature)) {
      currentCost += delta;
      if (currentCost < bestCost) {
        bestCost = currentCost;
        best = current;
      }
    } else {
      current[pick] = saved;
    }
    if ((iter + 1) % coolEvery == 0) {
      temperature = std::max(1e-3, temperature * options.cooling);
    }
  }
  Layout result = materialize(initial.width(), initial.height(), best);
  // Spacing keeps ports reachable in practice, but a pathological state can
  // still partition the free cells; fall back to the input layout then.
  try {
    Router router(result);
    (void)router.costMatrix();
  } catch (const std::runtime_error&) {
    return initial;
  }
  return result;
}

}  // namespace dmf::chip
