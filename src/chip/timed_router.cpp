#include "chip/timed_router.h"

#include <algorithm>
#include <cctype>
#include <functional>
#include <optional>
#include <stdexcept>

#include "chip/error.h"
#include "obs/scope.h"

namespace dmf::chip {

namespace {

int chebyshev(const Cell& a, const Cell& b) {
  const int dx = a.x > b.x ? a.x - b.x : b.x - a.x;
  const int dy = a.y > b.y ? a.y - b.y : b.y - a.y;
  return std::max(dx, dy);
}

// A droplet occupies its final position after arrival.
const Cell& positionAt(const Trajectory& traj, unsigned step) {
  const std::size_t index =
      std::min<std::size_t>(step, traj.positions.size() - 1);
  return traj.positions[index];
}

}  // namespace

unsigned Trajectory::arrivalStep() const {
  return positions.empty() ? 0u
                           : static_cast<unsigned>(positions.size() - 1);
}

unsigned Trajectory::actuations() const {
  unsigned count = 0;
  for (std::size_t i = 1; i < positions.size(); ++i) {
    if (!(positions[i] == positions[i - 1])) ++count;
  }
  return count;
}

TimedRouter::TimedRouter(const Layout& layout, TimedRouterOptions options)
    : layout_(&layout), options_(options) {}

PhaseResult TimedRouter::routePhase(std::vector<PhaseMove> moves) const {
  obs::Span span("chip.route_phase", "chip");
  if (obs::tracer() != nullptr) {
    span.arg("moves", std::to_string(moves.size()));
  }
  const Layout& layout = *layout_;
  for (const PhaseMove& m : moves) {
    for (const Cell& c : {m.from, m.to}) {
      if (c.x < 0 || c.y < 0 || c.x >= layout.width() ||
          c.y >= layout.height()) {
        throw std::invalid_argument("TimedRouter: endpoint off the array");
      }
    }
  }

  // Longest moves first; retries rotate the order.
  std::stable_sort(moves.begin(), moves.end(),
                   [](const PhaseMove& a, const PhaseMove& b) {
                     return manhattan(a.from, a.to) > manhattan(b.from, b.to);
                   });

  const unsigned horizon = options_.horizon;
  const auto w = static_cast<unsigned>(layout.width());
  const auto h = static_cast<unsigned>(layout.height());
  const std::size_t cells = static_cast<std::size_t>(w) * h;
  const std::size_t states = cells * (horizon + 1);

  // Phase-wide scratch, allocated once and reused by every move and retry.
  //
  // moduleGrid flattens Layout::moduleAt (a linear scan over modules) into
  // one lookup per probe: module id + 1, or 0 for a free cell.
  std::vector<std::uint32_t> moduleGrid(cells, 0);
  for (std::uint32_t id = 0; id < layout.moduleCount(); ++id) {
    const Module& m = layout.module(id);
    for (int y = m.origin.y; y < m.origin.y + m.height; ++y) {
      for (int x = m.origin.x; x < m.origin.x + m.width; ++x) {
        moduleGrid[static_cast<std::size_t>(y) * w +
                   static_cast<std::size_t>(x)] = id + 1;
      }
    }
  }
  auto cellIndex = [w](const Cell& c) {
    return static_cast<std::size_t>(c.y) * w + static_cast<std::size_t>(c.x);
  };

  // Dead electrodes are hard obstacles for every droplet, including module
  // interiors (a dead mixer cell stops droplets crossing that footprint).
  std::vector<std::uint8_t> deadGrid(cells, 0);
  for (const Cell& c : options_.deadCells) {
    if (c.x < 0 || c.y < 0 || c.x >= layout.width() ||
        c.y >= layout.height()) {
      continue;
    }
    deadGrid[cellIndex(c)] = 1;
  }
  for (const PhaseMove& m : moves) {
    for (const Cell& c : {m.from, m.to}) {
      if (deadGrid[cellIndex(c)] != 0) {
        throw ChipError("route", 0,
                        "endpoint (" + std::to_string(c.x) + "," +
                            std::to_string(c.y) + ") sits on a dead electrode",
                        m.tag);
      }
    }
  }

  // Per-step occupancy index over the committed trajectories: a droplet on
  // open cell `c` at step `s` sets occupied[s][c]. conflicts() then probes
  // the 3x3 neighbourhood at steps s-1/s/s+1 — O(1) per node expansion
  // instead of a scan over every committed trajectory. Steps run to
  // horizon+1 because the dynamic constraint looks one step past the last
  // expandable step.
  std::vector<std::uint8_t> occupied(cells * (horizon + 2), 0);
  auto commitOccupancy = [&](const Trajectory& traj) {
    for (unsigned s = 0; s <= horizon + 1; ++s) {
      const Cell& oc = positionAt(traj, s);
      if (moduleGrid[cellIndex(oc)] != 0) continue;
      occupied[s * cells + cellIndex(oc)] = 1;
    }
  };
  // Fluidic constraints apply on open cells only; module walls isolate
  // droplets physically.
  auto conflicts = [&](const Cell& c, unsigned step) {
    if (moduleGrid[cellIndex(c)] != 0) return false;
    for (unsigned s : {step == 0 ? step : step - 1, step, step + 1}) {
      const std::uint8_t* slab = occupied.data() + s * cells;
      const int y0 = c.y > 0 ? c.y - 1 : 0;
      const int y1 = c.y + 1 < static_cast<int>(h) ? c.y + 1 : c.y;
      const int x0 = c.x > 0 ? c.x - 1 : 0;
      const int x1 = c.x + 1 < static_cast<int>(w) ? c.x + 1 : c.x;
      for (int y = y0; y <= y1; ++y) {
        for (int x = x0; x <= x1; ++x) {
          if (slab[static_cast<std::size_t>(y) * w +
                   static_cast<std::size_t>(x)] != 0) {
            return true;
          }
        }
      }
    }
    return false;
  };

  // A* scratch shared across moves: `parent[s]` is meaningful only when
  // stamp[s] carries the current move's epoch, so starting the next move is
  // one counter bump, not an O(states) refill. The open list is a manual
  // binary heap over the same reused vector.
  std::vector<int> parent(states, -2);
  std::vector<std::uint32_t> stamp(states, 0);
  std::uint32_t epoch = 0;
  using Entry = std::pair<unsigned, std::size_t>;  // (f, state)
  std::vector<Entry> open;

  std::string lastError = "no moves";
  for (unsigned attempt = 0; attempt <= options_.retries; ++attempt) {
    std::vector<Trajectory> done;
    done.reserve(moves.size());
    if (attempt > 0) {
      std::fill(occupied.begin(), occupied.end(), 0);
    }
    bool failed = false;
    for (const PhaseMove& move : moves) {
      std::optional<Trajectory> traj = std::nullopt;
      try {
        traj = [&]() -> Trajectory {
          // Space-time A* against the occupancy index.
          const std::uint32_t fromModule = moduleGrid[cellIndex(move.from)];
          const std::uint32_t toModule = moduleGrid[cellIndex(move.to)];
          auto passable = [&](const Cell& c) {
            if (c.x < 0 || c.y < 0 || c.x >= layout.width() ||
                c.y >= layout.height()) {
              return false;
            }
            if (deadGrid[cellIndex(c)] != 0) return false;
            const std::uint32_t occupant = moduleGrid[cellIndex(c)];
            return occupant == 0 || occupant == fromModule ||
                   occupant == toModule;
          };

          if (++epoch == 0) {  // stamp wrap: reset and start over at 1
            std::fill(stamp.begin(), stamp.end(), 0);
            epoch = 1;
          }
          auto encode = [&](const Cell& c, unsigned step) {
            return static_cast<std::size_t>(step) * cells + cellIndex(c);
          };
          open.clear();
          const std::size_t start = encode(move.from, 0);
          stamp[start] = epoch;
          parent[start] = -1;
          open.push_back(
              {static_cast<unsigned>(manhattan(move.from, move.to)), start});
          std::size_t goalState = states;
          while (!open.empty()) {
            std::pop_heap(open.begin(), open.end(), std::greater<>{});
            const auto [f, state] = open.back();
            open.pop_back();
            const unsigned step = static_cast<unsigned>(state / cells);
            const Cell c{static_cast<int>(state % w),
                         static_cast<int>((state / w) % h)};
            if (c == move.to) {
              goalState = state;
              break;
            }
            if (step == horizon) continue;
            const Cell next[5] = {{c.x, c.y},     {c.x + 1, c.y},
                                  {c.x - 1, c.y}, {c.x, c.y + 1},
                                  {c.x, c.y - 1}};
            for (const Cell& n : next) {
              if (!passable(n)) continue;
              const std::size_t ns = encode(n, step + 1);
              if (stamp[ns] == epoch) continue;
              if (conflicts(n, step + 1)) continue;
              stamp[ns] = epoch;
              parent[ns] = static_cast<int>(state);
              open.push_back({step + 1 +
                                  static_cast<unsigned>(manhattan(n, move.to)),
                              ns});
              std::push_heap(open.begin(), open.end(), std::greater<>{});
            }
          }
          if (goalState == states) {
            throw ChipError("route", horizon,
                            "droplet from (" + std::to_string(move.from.x) +
                                "," + std::to_string(move.from.y) +
                                ") found no interference-free path",
                            move.tag);
          }
          Trajectory traj2;
          traj2.tag = move.tag;
          for (std::size_t s = goalState;;) {
            traj2.positions.push_back(Cell{static_cast<int>(s % w),
                                           static_cast<int>((s / w) % h)});
            const int p = parent[s];
            if (p < 0) break;
            s = static_cast<std::size_t>(p);
          }
          std::reverse(traj2.positions.begin(), traj2.positions.end());
          return traj2;
        }();
      } catch (const std::runtime_error& e) {
        lastError = e.what();
        failed = true;
        break;
      }
      commitOccupancy(*traj);
      done.push_back(std::move(*traj));
    }
    if (!failed) {
      PhaseResult result;
      result.trajectories = std::move(done);
      for (const Trajectory& traj : result.trajectories) {
        result.makespan = std::max(result.makespan, traj.arrivalStep());
        result.totalActuations += traj.actuations();
      }
      if (options_.verifyInterference) {
        checkInterference(result.trajectories);
      }
      if (obs::MetricsRegistry* m = obs::metrics()) {
        // A stall is a step on which a droplet held its cell before arrival
        // (waiting out another droplet's reservation).
        std::uint64_t stalls = 0;
        for (const Trajectory& traj : result.trajectories) {
          const unsigned arrival = traj.arrivalStep();
          for (unsigned step = 1;
               step <= arrival && step < traj.positions.size(); ++step) {
            if (traj.positions[step] == traj.positions[step - 1]) ++stalls;
          }
        }
        m->counter("chip.router.stall_cycles").add(stalls);
        m->counter("chip.router.phases").add(1);
        m->counter("chip.router.droplets").add(result.trajectories.size());
        m->counter("chip.router.retries").add(attempt);
      }
      return result;
    }
    // Rotate priorities: the failing order's head goes to the back.
    if (!moves.empty()) {
      std::rotate(moves.begin(), moves.begin() + 1, moves.end());
    }
  }
  throw ChipError("route", ChipError::kNoStep,
                  "phase unroutable after " +
                      std::to_string(options_.retries + 1) + " attempts (" +
                      lastError + ")");
}

void TimedRouter::checkInterference(
    const std::vector<Trajectory>& trajectories) const {
  unsigned makespan = 0;
  for (const Trajectory& t : trajectories) {
    makespan = std::max(makespan, t.arrivalStep());
  }
  for (std::size_t i = 0; i < trajectories.size(); ++i) {
    for (std::size_t j = i + 1; j < trajectories.size(); ++j) {
      for (unsigned step = 0; step <= makespan; ++step) {
        const Cell& a = positionAt(trajectories[i], step);
        if (layout_->moduleAt(a).has_value()) continue;
        // Static constraint at `step`, dynamic against step +/- 1.
        for (unsigned s : {step == 0 ? step : step - 1, step, step + 1}) {
          const Cell& b = positionAt(trajectories[j], s);
          if (layout_->moduleAt(b).has_value()) continue;
          if (chebyshev(a, b) <= 1) {
            throw std::logic_error(
                "TimedRouter: fluidic constraint violated between droplets " +
                std::to_string(trajectories[i].tag) + " and " +
                std::to_string(trajectories[j].tag) + " at step " +
                std::to_string(step));
          }
        }
      }
    }
  }
}

std::string renderPhase(const Layout& layout, const PhaseResult& result) {
  std::string out;
  for (unsigned step = 0; step <= result.makespan; ++step) {
    out += "step " + std::to_string(step) + ":\n";
    std::vector<std::string> grid(
        static_cast<std::size_t>(layout.height()),
        std::string(static_cast<std::size_t>(layout.width()), '.'));
    for (const Module& m : layout.modules()) {
      const char tag =
          static_cast<char>(std::tolower(moduleKindTag(m.kind)[0]));
      for (int y = m.origin.y; y < m.origin.y + m.height; ++y) {
        for (int x = m.origin.x; x < m.origin.x + m.width; ++x) {
          grid[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)] = tag;
        }
      }
    }
    for (std::size_t d = 0; d < result.trajectories.size(); ++d) {
      const Cell& c = positionAt(result.trajectories[d], step);
      grid[static_cast<std::size_t>(c.y)][static_cast<std::size_t>(c.x)] =
          static_cast<char>('A' + (d % 26));
    }
    for (const std::string& row : grid) {
      out += "  " + row + "\n";
    }
  }
  return out;
}

}  // namespace dmf::chip
