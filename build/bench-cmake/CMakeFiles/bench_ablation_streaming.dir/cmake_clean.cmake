file(REMOVE_RECURSE
  "../bench/bench_ablation_streaming"
  "../bench/bench_ablation_streaming.pdb"
  "CMakeFiles/bench_ablation_streaming.dir/bench_ablation_streaming.cpp.o"
  "CMakeFiles/bench_ablation_streaming.dir/bench_ablation_streaming.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
