#include "engine/baseline.h"

#include <stdexcept>

#include "engine/pass_cache.h"

namespace dmf::engine {

namespace {

BaselineResult fromBasePass(const StreamingPass& pass, std::uint64_t demand,
                            unsigned mixers) {
  BaselineResult r;
  r.passes = (demand + 1) / 2;
  r.passCycles = pass.cycles;
  r.completionTime = r.passes * pass.cycles;
  r.storageUnits = pass.storageUnits;
  r.mixSplits = r.passes * pass.mixSplits;
  r.waste = r.passes * pass.waste +
            (demand % 2 == 1 ? 1 : 0);  // odd demand discards one target
  r.inputDroplets = r.passes * pass.inputDroplets;
  r.mixers = mixers;
  return r;
}

}  // namespace

BaselineResult runRepeatedBaseline(const MdstEngine& engine,
                                   mixgraph::Algorithm algorithm,
                                   std::uint64_t demand, unsigned mixers) {
  if (demand == 0) {
    throw std::invalid_argument("runRepeatedBaseline: demand must be positive");
  }
  const unsigned mc = mixers == 0 ? engine.defaultMixers() : mixers;

  // One pass: the base graph at demand 2 (its natural two-droplet emission),
  // optimally scheduled. Every later pass is identical.
  const StreamingPass pass =
      evaluatePass(engine, algorithm, Scheme::kOMS, mc, 2);
  return fromBasePass(pass, demand, mc);
}

BaselineResult runRepeatedBaseline(const MdstEngine& engine,
                                   mixgraph::Algorithm algorithm,
                                   std::uint64_t demand, unsigned mixers,
                                   PassCache& cache) {
  if (demand == 0) {
    throw std::invalid_argument("runRepeatedBaseline: demand must be positive");
  }
  const unsigned mc = mixers == 0 ? engine.defaultMixers() : mixers;
  const StreamingPass pass =
      cache.evaluate(engine, algorithm, Scheme::kOMS, mc, 2);
  return fromBasePass(pass, demand, mc);
}

double percentImprovement(double baseline, double ours) {
  if (baseline == 0.0) return 0.0;
  return 100.0 * (baseline - ours) / baseline;
}

}  // namespace dmf::engine
