file(REMOVE_RECURSE
  "libdmf_forest.a"
)
