// The droplet-streaming engine (paper section 6, Table 4): satisfy a demand D
// under a hard cap on on-chip storage units by splitting it into passes, each
// pass running the largest mixing forest whose SRS schedule fits the cap.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/mdst.h"

namespace dmf::runtime {
class ThreadPool;
}  // namespace dmf::runtime

namespace dmf::engine {

class PassCache;
/// The streaming planner's worker pool is the shared runtime pool; the
/// PassPool name survives from when it lived in engine/.
using PassPool = runtime::ThreadPool;

/// One pass of a streaming plan.
struct StreamingPass {
  std::uint64_t demand = 0;       ///< target droplets produced by this pass
  unsigned cycles = 0;            ///< pass completion time
  unsigned storageUnits = 0;      ///< pass peak storage (<= the cap)
  std::uint64_t waste = 0;        ///< pass waste droplets
  std::uint64_t inputDroplets = 0;///< pass reactant usage
  std::uint64_t mixSplits = 0;    ///< pass mix-split count
};

/// A complete streaming plan.
struct StreamingPlan {
  /// Largest per-pass demand D' that fits the storage cap.
  std::uint64_t perPassDemand = 0;
  /// The individual passes, in execution order (all but possibly the last
  /// produce perPassDemand droplets).
  std::vector<StreamingPass> passes;
  /// Sum of pass cycle counts (passes run back to back).
  std::uint64_t totalCycles = 0;
  /// Sum of pass waste droplets.
  std::uint64_t totalWaste = 0;
  /// Sum of pass reactant usage.
  std::uint64_t totalInput = 0;
  /// Peak storage over all passes.
  unsigned storageUnits = 0;
  /// Mixers used.
  unsigned mixers = 0;
};

/// Request for a streaming plan.
struct StreamingRequest {
  mixgraph::Algorithm algorithm = mixgraph::Algorithm::MM;
  /// Scheduler used inside each pass; the paper streams with SRS.
  Scheme scheme = Scheme::kSRS;
  /// Total demand D.
  std::uint64_t demand = 2;
  /// Available on-chip storage units q'.
  unsigned storageCap = 0;
  /// Mixers; 0 = engine default (Mlb of the MM base tree).
  unsigned mixers = 0;
  /// Worker threads for candidate evaluation; 1 = serial (the default),
  /// 0 = one per hardware core. Results are identical for every value.
  unsigned jobs = 1;
};

/// Computes the streaming plan with the paper's rule: the largest feasible
/// per-pass demand D' repeated ceil(D/D') times, with two correctness
/// guarantees the paper's bisection sketch lacks:
///
///  * the search is verified — scheduled storage is NOT always monotone in
///    demand (the SRS storage curve can dip when the forest recomposes), so
///    the bisection result is re-checked and a probe that finds a feasible
///    demand above it falls back to a descending scan;
///  * the remainder pass (demand % D' droplets) is validated against the cap
///    too, and D' shrinks to the next feasible size until the tail fits, so
///    no emitted pass ever exceeds storageCap.
///
/// Throws dmf::InfeasibleError when even a two-droplet pass exceeds the cap
/// (or no split satisfies the cap); std::invalid_argument on a zero demand.
[[nodiscard]] StreamingPlan planStreaming(const MdstEngine& engine,
                                          const StreamingRequest& request);

/// As above, memoizing pass evaluations in a caller-owned cache (share one
/// cache per engine across calls to make demand sweeps incremental).
[[nodiscard]] StreamingPlan planStreaming(const MdstEngine& engine,
                                          const StreamingRequest& request,
                                          PassCache& cache);

/// As above with a caller-owned worker pool (overrides request.jobs).
[[nodiscard]] StreamingPlan planStreaming(const MdstEngine& engine,
                                          const StreamingRequest& request,
                                          PassCache& cache, PassPool& pool);

/// Exhaustive refinement of planStreaming: the largest feasible D' does not
/// always minimize the total cycle count (a slightly smaller forest can
/// schedule disproportionately faster under a tight cap), so this variant
/// evaluates every feasible per-pass demand and returns the plan with the
/// fewest total cycles (ties broken toward less waste, then fewer passes).
/// Candidate evaluation fans out over request.jobs workers through a sparse
/// PassCache (no O(D) upfront allocation); the reduction is serial and
/// ascending, so the result is identical for every job count. Same error
/// behaviour as planStreaming, plus std::invalid_argument on a demand of
/// UINT64_MAX (the inclusive candidate range would overflow).
[[nodiscard]] StreamingPlan planStreamingOptimized(
    const MdstEngine& engine, const StreamingRequest& request);

/// Shared-cache overload of planStreamingOptimized.
[[nodiscard]] StreamingPlan planStreamingOptimized(
    const MdstEngine& engine, const StreamingRequest& request,
    PassCache& cache);

/// Shared-cache, shared-pool overload of planStreamingOptimized.
[[nodiscard]] StreamingPlan planStreamingOptimized(
    const MdstEngine& engine, const StreamingRequest& request,
    PassCache& cache, PassPool& pool);

}  // namespace dmf::engine
