# Empty compiler generated dependencies file for dmf_report.
# This may be replaced when dependencies are built.
