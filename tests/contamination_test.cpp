#include "chip/contamination.h"

#include <gtest/gtest.h>

#include "chip/executor.h"
#include "chip/pcr_layout.h"
#include "chip/router.h"
#include "forest/task_forest.h"
#include "mixgraph/builders.h"
#include "sched/schedulers.h"

namespace dmf::chip {
namespace {

using forest::TaskForest;
using mixgraph::buildMM;
using mixgraph::MixingGraph;

SimulationResult simulatePcr(const Layout& layout, std::uint64_t demand) {
  Router router(layout);
  ChipExecutor executor(layout, router);
  const MixingGraph graph = buildMM(Ratio({2, 1, 1, 1, 1, 1, 9}));
  const TaskForest forest(graph, demand);
  const ExecutionTrace trace =
      executor.run(forest, sched::scheduleSRS(forest, 3));
  return simulateTrace(layout, trace);
}

TEST(Contamination, CountsAreConsistent) {
  const Layout layout = makePcrLayout();
  const SimulationResult sim = simulatePcr(layout, 20);
  const ContaminationReport report = analyzeContamination(layout, sim);
  EXPECT_GT(report.visitedCells, 0u);
  EXPECT_LE(report.sharedCells, report.visitedCells);
  EXPECT_GE(report.contaminatedReuses, report.sharedCells);
  EXPECT_LE(report.washDroplets, sim.phases.size());
}

TEST(Contamination, BusyRunsContaminateMoreThanQuietOnes) {
  const Layout layout = makePcrLayout();
  const ContaminationReport small =
      analyzeContamination(layout, simulatePcr(layout, 4));
  const ContaminationReport large =
      analyzeContamination(layout, simulatePcr(layout, 20));
  EXPECT_GE(large.contaminatedReuses, small.contaminatedReuses);
  EXPECT_GE(large.visitedCells, small.visitedCells);
}

TEST(Contamination, SingleDropletLeavesNoSharedCells) {
  // One droplet crossing an otherwise idle array contaminates nothing.
  Layout layout(10, 10);
  layout.add(Module{ModuleKind::kMixer, Cell{0, 0}, 1, 1, 0, "A"});
  layout.add(Module{ModuleKind::kMixer, Cell{9, 9}, 1, 1, 0, "B"});
  TimedRouter router(layout);
  SimulationResult sim;
  SimulatedPhase phase;
  phase.cycle = 1;
  phase.routing = router.routePhase({PhaseMove{Cell{0, 0}, Cell{9, 9}, 0}});
  sim.phases.push_back(std::move(phase));
  const ContaminationReport report = analyzeContamination(layout, sim);
  EXPECT_GT(report.visitedCells, 0u);
  EXPECT_EQ(report.sharedCells, 0u);
  EXPECT_EQ(report.contaminatedReuses, 0u);
  EXPECT_EQ(report.washDroplets, 0u);
}

TEST(Contamination, ModuleCellsAreExcluded) {
  const Layout layout = makePcrLayout();
  const SimulationResult sim = simulatePcr(layout, 8);
  const std::string map = renderContamination(layout, sim);
  // Mixer interior cells render untouched even though droplets enter them.
  const auto mixers = layout.byKind(ModuleKind::kMixer);
  const Cell port = layout.module(mixers[0]).port();
  const std::size_t index =
      static_cast<std::size_t>(port.y) *
          (static_cast<std::size_t>(layout.width()) + 1) +
      static_cast<std::size_t>(port.x);
  EXPECT_EQ(map[index], '.');
}

TEST(Contamination, RenderMarksSharedCells) {
  const Layout layout = makePcrLayout();
  const SimulationResult sim = simulatePcr(layout, 20);
  const std::string map = renderContamination(layout, sim);
  EXPECT_NE(map.find('o'), std::string::npos);
  EXPECT_NE(map.find_first_of("23456789"), std::string::npos);
}

}  // namespace
}  // namespace dmf::chip
