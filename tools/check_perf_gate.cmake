# Runs a bench binary, then gates its BENCH_*.json metrics snapshot against
# a checked-in baseline with the perf_gate tool (DESIGN.md §14).
#
#   cmake -DPERF_GATE=<perf_gate exe> -DBENCH_BIN=<bench exe>
#         [-DBENCH_ARGS=<;-list of extra bench args>]
#         -DMETRICS=<snapshot output path> -DBASELINE=<baseline json>
#         -P check_perf_gate.cmake
#
# The gate exits 4 on any regression beyond tolerance; this driver turns
# that (or any other nonzero code) into a ctest failure with the gate's
# comparison table in the log. Checked-in baselines carry deliberate
# headroom — CI machines vary — so a trip here means a real regression,
# not noise; check_perf_gate_selftest.cmake proves the trip wire works.
foreach(var PERF_GATE BENCH_BIN METRICS BASELINE)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_perf_gate: -D${var}= is required")
  endif()
endforeach()

execute_process(
  COMMAND ${BENCH_BIN} ${BENCH_ARGS} --metrics ${METRICS}
  RESULT_VARIABLE bench_rc
  OUTPUT_VARIABLE bench_out
  ERROR_VARIABLE bench_err)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "check_perf_gate: bench exited ${bench_rc}\n"
          "stdout:\n${bench_out}\nstderr:\n${bench_err}")
endif()

execute_process(
  COMMAND ${PERF_GATE} --bench ${METRICS} --baseline ${BASELINE}
  RESULT_VARIABLE gate_rc
  OUTPUT_VARIABLE gate_out
  ERROR_VARIABLE gate_err)
message(STATUS "perf_gate output:\n${gate_out}")
if(NOT gate_rc EQUAL 0)
  message(FATAL_ERROR "check_perf_gate: perf_gate exited ${gate_rc} "
          "(4 = regression beyond tolerance)\n${gate_err}")
endif()
