#include "server/canonical.h"

#include <limits>
#include <stdexcept>

namespace dmf::server {

namespace {

using report::Json;

/// A required or defaulted unsigned field with a range check.
std::uint64_t uintField(const Json& json, const std::string& name,
                        std::uint64_t fallback, std::uint64_t min,
                        std::uint64_t max) {
  if (!json.contains(name)) return fallback;
  std::uint64_t value = 0;
  try {
    value = json.at(name).asUint();
  } catch (const std::logic_error&) {
    throw std::invalid_argument("request field \"" + name +
                                "\" must be an unsigned integer");
  }
  if (value < min || value > max) {
    throw std::invalid_argument("request field \"" + name + "\" out of range");
  }
  return value;
}

std::string stringField(const Json& json, const std::string& name,
                        const std::string& fallback) {
  if (!json.contains(name)) return fallback;
  try {
    return json.at(name).asString();
  } catch (const std::logic_error&) {
    throw std::invalid_argument("request field \"" + name +
                                "\" must be a string");
  }
}

}  // namespace

mixgraph::Algorithm parseAlgorithm(const std::string& name) {
  if (name == "MM") return mixgraph::Algorithm::MM;
  if (name == "RMA") return mixgraph::Algorithm::RMA;
  if (name == "MTCS") return mixgraph::Algorithm::MTCS;
  if (name == "RSM") return mixgraph::Algorithm::RSM;
  throw std::invalid_argument("unknown algorithm \"" + name +
                              "\" (MM|RMA|MTCS|RSM)");
}

engine::Scheme parseScheme(const std::string& name) {
  if (name == "MMS") return engine::Scheme::kMMS;
  if (name == "SRS") return engine::Scheme::kSRS;
  if (name == "OMS") return engine::Scheme::kOMS;
  throw std::invalid_argument("unknown scheme \"" + name + "\" (MMS|SRS|OMS)");
}

PlanRequest PlanRequest::fromJson(const Json& json) {
  if (!json.isObject()) {
    throw std::invalid_argument("request must be a JSON object");
  }
  if (!json.contains("ratio")) {
    throw std::invalid_argument("request needs a \"ratio\" field");
  }
  PlanRequest request;
  const std::string ratioText = stringField(json, "ratio", "");
  const auto ratio = Ratio::parse(ratioText);
  if (!ratio.has_value()) {
    throw std::invalid_argument("malformed ratio \"" + ratioText + "\"");
  }
  request.ratio = *ratio;
  if (!json.contains("demand")) {
    throw std::invalid_argument("request needs a \"demand\" field");
  }
  request.demand =
      uintField(json, "demand", 0, 1,
                std::numeric_limits<std::uint64_t>::max() - 1);
  request.storageCap = static_cast<unsigned>(
      uintField(json, "storage", 4, 1, std::numeric_limits<unsigned>::max()));
  request.mixers = static_cast<unsigned>(
      uintField(json, "mixers", 0, 0, std::numeric_limits<unsigned>::max()));
  request.algorithm = parseAlgorithm(stringField(json, "algo", "MM"));
  request.scheme = parseScheme(stringField(json, "scheme", "SRS"));
  if (json.contains("optimize")) {
    try {
      request.optimize = json.at("optimize").asBool();
    } catch (const std::logic_error&) {
      throw std::invalid_argument(
          "request field \"optimize\" must be a boolean");
    }
  }
  return request;
}

CanonicalRequest canonicalize(const PlanRequest& request) {
  CanonicalRequest canonical;
  // The normal-form reduction (through DyadicFraction concentrations) is
  // what keys 2:4:2 and 1:2:1 to one cache entry: the mixtures are
  // identical, so the plans must be too — planning always runs on the
  // reduced ratio.
  canonical.ratio = request.ratio.reduced();
  canonical.algorithm = request.algorithm;
  canonical.scheme = request.scheme;
  canonical.demand = request.demand;
  canonical.storageCap = request.storageCap;
  canonical.mixers = request.mixers;
  canonical.optimize = request.optimize;
  return canonical;
}

std::string CanonicalRequest::key() const {
  std::string out = "v1|ratio=";
  out += ratio.toString();
  out += "|algo=";
  out += mixgraph::algorithmName(algorithm);
  out += "|scheme=";
  out += engine::schemeName(scheme);
  out += "|d=" + std::to_string(demand);
  out += "|cap=" + std::to_string(storageCap);
  out += "|mc=" + std::to_string(mixers);
  out += std::string("|opt=") + (optimize ? "1" : "0");
  return out;
}

}  // namespace dmf::server
