# Empty dependencies file for dmf_protocols.
# This may be replaced when dependencies are built.
