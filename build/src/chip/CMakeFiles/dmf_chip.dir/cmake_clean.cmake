file(REMOVE_RECURSE
  "CMakeFiles/dmf_chip.dir/contamination.cpp.o"
  "CMakeFiles/dmf_chip.dir/contamination.cpp.o.d"
  "CMakeFiles/dmf_chip.dir/executor.cpp.o"
  "CMakeFiles/dmf_chip.dir/executor.cpp.o.d"
  "CMakeFiles/dmf_chip.dir/layout.cpp.o"
  "CMakeFiles/dmf_chip.dir/layout.cpp.o.d"
  "CMakeFiles/dmf_chip.dir/pcr_layout.cpp.o"
  "CMakeFiles/dmf_chip.dir/pcr_layout.cpp.o.d"
  "CMakeFiles/dmf_chip.dir/pin_mapper.cpp.o"
  "CMakeFiles/dmf_chip.dir/pin_mapper.cpp.o.d"
  "CMakeFiles/dmf_chip.dir/placer.cpp.o"
  "CMakeFiles/dmf_chip.dir/placer.cpp.o.d"
  "CMakeFiles/dmf_chip.dir/reliability.cpp.o"
  "CMakeFiles/dmf_chip.dir/reliability.cpp.o.d"
  "CMakeFiles/dmf_chip.dir/router.cpp.o"
  "CMakeFiles/dmf_chip.dir/router.cpp.o.d"
  "CMakeFiles/dmf_chip.dir/simulation.cpp.o"
  "CMakeFiles/dmf_chip.dir/simulation.cpp.o.d"
  "CMakeFiles/dmf_chip.dir/timed_router.cpp.o"
  "CMakeFiles/dmf_chip.dir/timed_router.cpp.o.d"
  "libdmf_chip.a"
  "libdmf_chip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmf_chip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
