#include "engine/recovery.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "chip/pcr_layout.h"
#include "engine/serialize.h"
#include "mixgraph/builders.h"
#include "sched/schedulers.h"

namespace dmf::engine {
namespace {

using forest::TaskForest;
using mixgraph::buildMM;
using mixgraph::MixingGraph;

Ratio pcr() { return Ratio({2, 1, 1, 1, 1, 1, 9}); }

/// delivered + shortfall must always cover the demand, and the round sums
/// must match the report aggregates — the conservation laws every recovery
/// run obeys regardless of the fault pattern.
void checkInvariants(const RecoveryReport& r) {
  EXPECT_EQ(r.delivered + r.shortfall, r.demand);
  EXPECT_LE(r.roundsUsed, r.retryBudget);
  EXPECT_EQ(r.rounds.size(), r.roundsUsed);
  std::uint64_t mixSplits = 0;
  std::uint64_t inputs = 0;
  for (const RepairRound& round : r.rounds) {
    EXPECT_FALSE(round.needs.empty());
    for (const forest::NodeDemand& need : round.needs) {
      EXPECT_GT(need.count, 0u);
    }
    mixSplits += round.mixSplits;
    inputs += round.inputDroplets;
  }
  EXPECT_EQ(r.extraMixSplits, mixSplits);
  EXPECT_EQ(r.extraInputDroplets, inputs);
  if (r.shortfall > 0) EXPECT_TRUE(r.degraded);
}

TEST(Recovery, FaultFreeRunDeliversFullDemand) {
  const MixingGraph g = buildMM(pcr());
  const TaskForest f(g, 8);
  const sched::Schedule s = sched::scheduleSRS(f, 3);
  const RecoveryEngine engine{RecoveryOptions{}};
  const RecoveryReport r = engine.run(f, s);
  EXPECT_EQ(r.delivered, 8u);
  EXPECT_EQ(r.shortfall, 0u);
  EXPECT_EQ(r.escapedErrors, 0u);
  EXPECT_TRUE(r.faults.empty());
  EXPECT_TRUE(r.rounds.empty());
  EXPECT_FALSE(r.degraded);
  // With no faults the replay tracks the schedule exactly.
  EXPECT_EQ(r.completionCycle, s.completionTime);
  checkInvariants(r);
}

TEST(Recovery, FaultFreeRunLeavesPlanOutputByteIdentical) {
  const MixingGraph g = buildMM(pcr());
  const TaskForest f(g, 8);
  const sched::Schedule s = sched::scheduleSRS(f, 3);
  const std::string before = toJson(f, s).dump();
  const RecoveryEngine engine{RecoveryOptions{}};
  (void)engine.run(f, s);
  EXPECT_EQ(toJson(f, s).dump(), before);
}

TEST(Recovery, DeterministicForSeed) {
  const MixingGraph g = buildMM(pcr());
  const TaskForest f(g, 16);
  const sched::Schedule s = sched::scheduleSRS(f, 3);
  RecoveryOptions opts;
  opts.faults = fault::FaultSpec::parse("split=0.3,eps=0.2,loss=0.1");
  opts.seed = 1337;
  const std::string a = toJson(RecoveryEngine{opts}.run(f, s)).dump();
  const std::string b = toJson(RecoveryEngine{opts}.run(f, s)).dump();
  EXPECT_EQ(a, b);
  opts.seed = 1338;
  const std::string c = toJson(RecoveryEngine{opts}.run(f, s)).dump();
  EXPECT_NE(a, c);
}

TEST(Recovery, HandlesFaultsAcrossSeedsWithoutThrowing) {
  const MixingGraph g = buildMM(pcr());
  const TaskForest f(g, 8);
  const sched::Schedule s = sched::scheduleSRS(f, 3);
  RecoveryOptions opts;
  opts.faults = fault::FaultSpec::parse("split=0.2,loss=0.1,dispense=0.05");
  for (const std::uint64_t seed : {1ull, 7ull, 42ull, 1337ull}) {
    opts.seed = seed;
    checkInvariants(RecoveryEngine{opts}.run(f, s));
  }
}

TEST(Recovery, DispenseFailuresOnlyDelayCompletion) {
  const MixingGraph g = buildMM(pcr());
  const TaskForest f(g, 8);
  const sched::Schedule s = sched::scheduleSRS(f, 3);
  RecoveryOptions opts;
  opts.faults = fault::FaultSpec::parse("dispense=0.4");
  opts.seed = 11;
  const RecoveryReport r = RecoveryEngine{opts}.run(f, s);
  // Misfires waste mixer slots but never corrupt droplets: full delivery,
  // later completion, no repair rounds.
  EXPECT_EQ(r.delivered, r.demand);
  EXPECT_TRUE(r.rounds.empty());
  EXPECT_GE(r.completionCycle, r.baseCompletion);
  EXPECT_FALSE(r.faults.empty());
  for (const fault::FaultEvent& e : r.faults) {
    EXPECT_EQ(e.kind, fault::FaultKind::kDispenseFail);
  }
  checkInvariants(r);
}

TEST(Recovery, LostDropletsRepairViaInteriorDemand) {
  const MixingGraph g = buildMM(pcr());
  const TaskForest f(g, 16);
  const sched::Schedule s = sched::scheduleSRS(f, 3);
  RecoveryOptions opts;
  opts.faults = fault::FaultSpec::parse("loss=0.15");
  opts.seed = 42;
  const RecoveryReport r = RecoveryEngine{opts}.run(f, s);
  checkInvariants(r);
  ASSERT_FALSE(r.faults.empty());
  // A loss costs a repair round, and the demand-driven repair re-executes
  // strictly fewer mix-splits than restarting the assay would.
  ASSERT_FALSE(r.rounds.empty());
  EXPECT_GT(r.extraMixSplits, 0u);
  EXPECT_LT(r.rounds.front().mixSplits, f.stats().mixSplits);
  // Stall-don't-cancel: every detected loss demands a replacement at the
  // lost droplet's own node, so no round collapses to whole-tree demand.
  for (const RepairRound& round : r.rounds) {
    std::uint64_t total = 0;
    for (const forest::NodeDemand& need : round.needs) total += need.count;
    EXPECT_LT(total, r.demand);
  }
}

TEST(Recovery, SplitImbalanceBeyondThresholdIsDiscardedAndRemade) {
  const MixingGraph g = buildMM(pcr());
  const TaskForest f(g, 8);
  const sched::Schedule s = sched::scheduleSRS(f, 3);
  RecoveryOptions opts;
  opts.faults = fault::FaultSpec::parse("split=0.5,eps=0.9");
  opts.seed = 5;
  opts.retryBudget = 8;
  const RecoveryReport r = RecoveryEngine{opts}.run(f, s);
  checkInvariants(r);
  EXPECT_FALSE(r.faults.empty());
  // eps up to 0.9 pushes most faulted splits past the quantization
  // threshold, so checkpoints must discard droplets and splice repairs.
  EXPECT_GT(r.discarded, 0u);
  EXPECT_GT(r.roundsUsed, 0u);
}

TEST(Recovery, RetryBudgetZeroDegradesGracefully) {
  const MixingGraph g = buildMM(pcr());
  const TaskForest f(g, 8);
  const sched::Schedule s = sched::scheduleSRS(f, 3);
  RecoveryOptions opts;
  opts.faults = fault::FaultSpec::parse("loss=1.0");
  opts.seed = 1;
  opts.retryBudget = 0;
  const RecoveryReport r = RecoveryEngine{opts}.run(f, s);
  checkInvariants(r);
  EXPECT_TRUE(r.degraded);
  EXPECT_GT(r.shortfall, 0u);
  EXPECT_NE(r.degradationReason.find("retry budget"), std::string::npos);
}

TEST(Recovery, RetryBudgetBoundaryIsNotOffByOne) {
  const MixingGraph g = buildMM(pcr());
  const TaskForest f(g, 8);
  const sched::Schedule s = sched::scheduleSRS(f, 3);
  // Reference run with the maximum budget: find how many repair rounds
  // this fault pattern actually needs.
  RecoveryOptions opts;
  opts.faults = fault::FaultSpec::parse("loss=0.3");
  opts.seed = 7;
  opts.retryBudget = 64;
  const RecoveryReport reference = RecoveryEngine{opts}.run(f, s);
  checkInvariants(reference);
  ASSERT_GE(reference.roundsUsed, 2u)
      << "fault pattern too mild to exercise the boundary";
  ASSERT_FALSE(reference.degraded);
  const unsigned needed = reference.roundsUsed;

  // Budget == rounds needed: the last permitted round is the one that
  // finishes the repair — no spurious budget degradation.
  opts.retryBudget = needed;
  const RecoveryReport exact = RecoveryEngine{opts}.run(f, s);
  checkInvariants(exact);
  EXPECT_EQ(exact.roundsUsed, needed);
  EXPECT_FALSE(exact.degraded);
  EXPECT_EQ(exact.delivered, exact.demand);

  // One round short: the run degrades with the budget named, and never
  // splices a round past the budget.
  opts.retryBudget = needed - 1;
  const RecoveryReport short1 = RecoveryEngine{opts}.run(f, s);
  checkInvariants(short1);
  EXPECT_TRUE(short1.degraded);
  EXPECT_LE(short1.roundsUsed, needed - 1);
  EXPECT_NE(short1.degradationReason.find("retry budget exhausted (" +
                                          std::to_string(needed - 1) +
                                          " rounds)"),
            std::string::npos);
}

TEST(Recovery, RetryBudgetCtorBoundary) {
  RecoveryOptions opts;
  opts.retryBudget = 64;  // the documented maximum
  EXPECT_NO_THROW(RecoveryEngine{opts});
  opts.retryBudget = 65;
  EXPECT_THROW(RecoveryEngine{opts}, std::invalid_argument);
}

TEST(Recovery, InputBudgetExhaustionDegrades) {
  const MixingGraph g = buildMM(pcr());
  const TaskForest f(g, 8);
  const sched::Schedule s = sched::scheduleSRS(f, 3);
  RecoveryOptions opts;
  opts.faults = fault::FaultSpec::parse("loss=0.5");
  opts.seed = 3;
  // Exactly the fault-free stock: any repair round needs droplets the
  // reservoirs no longer hold.
  opts.inputBudget = f.stats().inputTotal;
  const RecoveryReport r = RecoveryEngine{opts}.run(f, s);
  checkInvariants(r);
  EXPECT_TRUE(r.degraded);
  EXPECT_NE(r.degradationReason.find("input budget"), std::string::npos);
  EXPECT_TRUE(r.rounds.empty());
}

TEST(Recovery, StorageCappedRepairScheduling) {
  const MixingGraph g = buildMM(pcr());
  const TaskForest f(g, 16);
  const sched::Schedule s = sched::scheduleSRS(f, 3);
  RecoveryOptions opts;
  opts.faults = fault::FaultSpec::parse("loss=0.2");
  opts.seed = 9;
  opts.storageCap = 5;
  const RecoveryReport r = RecoveryEngine{opts}.run(f, s);
  checkInvariants(r);
}

TEST(Recovery, ElectrodeDeathsShrinkTheMixerBank) {
  const MixingGraph g = buildMM(pcr());
  const TaskForest f(g, 16);
  const sched::Schedule s = sched::scheduleSRS(f, 3);
  const chip::Layout layout = chip::makePcrLayout();
  RecoveryOptions opts;
  opts.faults = fault::FaultSpec::parse("electrode=0.5");
  opts.seed = 21;
  opts.layout = &layout;
  const RecoveryReport r = RecoveryEngine{opts}.run(f, s);
  checkInvariants(r);
  EXPECT_FALSE(r.deadCells.empty());
  EXPECT_LE(r.mixersLost + r.storageLost, r.deadCells.size());
  EXPECT_LE(r.mixersLost, s.mixerCount);
  for (const chip::Cell& c : r.deadCells) {
    EXPECT_GE(c.x, 0);
    EXPECT_LT(c.x, layout.width());
    EXPECT_GE(c.y, 0);
    EXPECT_LT(c.y, layout.height());
  }
}

TEST(Recovery, DetectionLatencyLetsSomeErrorsEscapeOrPropagate) {
  const MixingGraph g = buildMM(pcr());
  const TaskForest f(g, 16);
  const sched::Schedule s = sched::scheduleSRS(f, 3);
  RecoveryOptions opts;
  opts.faults = fault::FaultSpec::parse("split=0.4,eps=0.9");
  opts.seed = 42;
  // Immediate sensing catches at least as many errors as a 4-cycle-late,
  // every-4th-cycle sensor on the same fault sequence.
  const RecoveryReport sharp = RecoveryEngine{opts}.run(f, s);
  opts.checkpoint.everyLevels = 4;
  opts.checkpoint.detectionLatency = 4;
  const RecoveryReport blunt = RecoveryEngine{opts}.run(f, s);
  checkInvariants(sharp);
  checkInvariants(blunt);
  EXPECT_GE(blunt.escapedErrors + blunt.shortfall,
            sharp.escapedErrors + sharp.shortfall);
}

TEST(Recovery, RejectsInvalidOptionsAndInputs) {
  RecoveryOptions opts;
  opts.checkpoint.everyLevels = 0;
  EXPECT_THROW(RecoveryEngine{opts}, std::invalid_argument);
  const MixingGraph g = buildMM(pcr());
  const TaskForest f(g, 4);
  sched::Schedule wrong;  // empty: does not match the forest
  EXPECT_THROW((void)RecoveryEngine{RecoveryOptions{}}.run(f, wrong),
               std::invalid_argument);
}

TEST(Recovery, ReportSerializesAndRenders) {
  const MixingGraph g = buildMM(pcr());
  const TaskForest f(g, 8);
  const sched::Schedule s = sched::scheduleSRS(f, 3);
  RecoveryOptions opts;
  opts.faults = fault::FaultSpec::parse("loss=0.3");
  opts.seed = 2;
  const RecoveryReport r = RecoveryEngine{opts}.run(f, s);
  const std::string json = toJson(r).dump();
  for (const char* key :
       {"\"demand\"", "\"delivered\"", "\"shortfall\"", "\"faults\"",
        "\"rounds\"", "\"extraMixSplits\"", "\"degraded\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  const std::string text = renderReport(r);
  EXPECT_NE(text.find("targets delivered"), std::string::npos);
}

}  // namespace
}  // namespace dmf::engine
