// Micro-benchmarks (google-benchmark): construction and scheduling
// throughput of the library's hot paths.
#include <benchmark/benchmark.h>

#include "analysis/error_model.h"
#include "chip/executor.h"
#include "chip/pcr_layout.h"
#include "chip/router.h"
#include "engine/mdst.h"
#include "forest/task_forest.h"
#include "mixgraph/builders.h"
#include "obs/scope.h"
#include "protocols/protocols.h"
#include "sched/ga_scheduler.h"
#include "sched/heterogeneous.h"
#include "sched/schedulers.h"
#include "workload/ratio_corpus.h"

namespace {

using namespace dmf;

const Ratio& pcrRatio() {
  static const Ratio ratio = protocols::pcrMasterMixRatio();
  return ratio;
}

const Ratio& bigRatio() {
  static const Ratio ratio = protocols::publishedProtocols()[2].ratio;
  return ratio;
}

void BM_BuildMM(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(mixgraph::buildMM(bigRatio()));
  }
}
BENCHMARK(BM_BuildMM);

void BM_BuildRMA(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(mixgraph::buildRMA(bigRatio()));
  }
}
BENCHMARK(BM_BuildRMA);

void BM_BuildMTCS(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(mixgraph::buildMTCS(bigRatio()));
  }
}
BENCHMARK(BM_BuildMTCS);

void BM_ForestConstruction(benchmark::State& state) {
  const mixgraph::MixingGraph graph = mixgraph::buildMM(bigRatio());
  const auto demand = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest::TaskForest(graph, demand));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ForestConstruction)->Range(2, 512)->Complexity();

void BM_ScheduleMMS(benchmark::State& state) {
  const mixgraph::MixingGraph graph = mixgraph::buildMM(bigRatio());
  const forest::TaskForest f(graph, static_cast<std::uint64_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::scheduleMMS(f, 4));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ScheduleMMS)->Range(2, 512)->Complexity();

void BM_ScheduleSRS(benchmark::State& state) {
  const mixgraph::MixingGraph graph = mixgraph::buildMM(bigRatio());
  const forest::TaskForest f(graph, static_cast<std::uint64_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::scheduleSRS(f, 4));
  }
}
BENCHMARK(BM_ScheduleSRS)->Range(2, 128);

void BM_ScheduleOMS(benchmark::State& state) {
  const mixgraph::MixingGraph graph = mixgraph::buildMM(bigRatio());
  const forest::TaskForest f(graph, static_cast<std::uint64_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::scheduleOMS(f, 4));
  }
}
BENCHMARK(BM_ScheduleOMS)->Range(2, 512);

void BM_StorageCount(benchmark::State& state) {
  const mixgraph::MixingGraph graph = mixgraph::buildMM(bigRatio());
  const forest::TaskForest f(graph, 64);
  const sched::Schedule s = sched::scheduleMMS(f, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::countStorage(f, s));
  }
}
BENCHMARK(BM_StorageCount);

void BM_EndToEndEngine(benchmark::State& state) {
  for (auto _ : state) {
    engine::MdstEngine engine(pcrRatio());
    engine::MdstRequest request;
    request.scheme = engine::Scheme::kMMS;
    request.demand = 32;
    benchmark::DoNotOptimize(engine.run(request));
  }
}
BENCHMARK(BM_EndToEndEngine);

void BM_RouterCostMatrix(benchmark::State& state) {
  const chip::Layout layout = chip::makePcrLayout();
  for (auto _ : state) {
    chip::Router router(layout);
    benchmark::DoNotOptimize(router.costMatrix());
  }
}
BENCHMARK(BM_RouterCostMatrix);

void BM_ChipExecution(benchmark::State& state) {
  const chip::Layout layout = chip::makePcrLayout();
  chip::Router router(layout);
  chip::ChipExecutor executor(layout, router);
  const mixgraph::MixingGraph graph = mixgraph::buildMM(pcrRatio());
  const forest::TaskForest f(graph, 20);
  const sched::Schedule s = sched::scheduleSRS(f, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.run(f, s));
  }
}
BENCHMARK(BM_ChipExecution);

void BM_ScheduleGA(benchmark::State& state) {
  const mixgraph::MixingGraph graph = mixgraph::buildMM(pcrRatio());
  const forest::TaskForest f(graph, 32);
  sched::GaOptions options;
  options.population = 16;
  options.generations = 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::scheduleGA(f, 3, options));
  }
}
BENCHMARK(BM_ScheduleGA);

void BM_ScheduleHeterogeneous(benchmark::State& state) {
  const mixgraph::MixingGraph graph = mixgraph::buildMM(pcrRatio());
  const forest::TaskForest f(graph, 32);
  const sched::MixerBank bank{{1, 2, 4}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::scheduleHeterogeneous(f, bank));
  }
}
BENCHMARK(BM_ScheduleHeterogeneous);

void BM_MultiTargetGraph(benchmark::State& state) {
  const std::vector<Ratio> targets = {Ratio({2, 1, 1, 1, 1, 1, 9}),
                                      Ratio({2, 1, 1, 1, 1, 9, 1}),
                                      Ratio({4, 4, 2, 2, 1, 1, 2})};
  for (auto _ : state) {
    benchmark::DoNotOptimize(mixgraph::buildMultiTarget(targets));
  }
}
BENCHMARK(BM_MultiTargetGraph);

void BM_ErrorAnalysis(benchmark::State& state) {
  const mixgraph::MixingGraph graph = mixgraph::buildMM(bigRatio());
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::analyzeErrors(graph, {0.05, 0.0}));
  }
}
BENCHMARK(BM_ErrorAnalysis);

void BM_CorpusGeneration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload::partitionCorpus(32, 2, 12));
  }
}
BENCHMARK(BM_CorpusGeneration);

// --- observability overhead -----------------------------------------------
// The disabled path must be near-free: each helper is one relaxed atomic
// load plus a branch, so these two benchmarks should report low-nanosecond
// times. BM_ObsDisabledScheduling vs BM_ScheduleMMS quantifies the
// whole-pipeline cost of the instrumentation hooks when no session exists.

void BM_ObsDisabledCount(benchmark::State& state) {
  for (auto _ : state) {
    obs::count("bench.disabled.counter");
    benchmark::DoNotOptimize(obs::enabled());
  }
}
BENCHMARK(BM_ObsDisabledCount);

void BM_ObsDisabledSpan(benchmark::State& state) {
  for (auto _ : state) {
    const obs::Span span("bench.disabled.span", "bench");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_ObsDisabledSpan);

void BM_ObsEnabledCount(benchmark::State& state) {
  obs::Session session;
  const obs::Scope scope(session);
  for (auto _ : state) {
    obs::count("bench.enabled.counter");
  }
}
BENCHMARK(BM_ObsEnabledCount);

void BM_ObsEnabledSpan(benchmark::State& state) {
  obs::Session session;
  const obs::Scope scope(session);
  for (auto _ : state) {
    const obs::Span span("bench.enabled.span", "bench");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_ObsEnabledSpan);

void BM_ObsDisabledScheduling(benchmark::State& state) {
  const mixgraph::MixingGraph graph = mixgraph::buildMM(bigRatio());
  const forest::TaskForest f(graph, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::scheduleMMS(f, 4));
    benchmark::DoNotOptimize(sched::countStorage(f, sched::scheduleMMS(f, 4)));
  }
}
BENCHMARK(BM_ObsDisabledScheduling);

void BM_ObsEnabledScheduling(benchmark::State& state) {
  const mixgraph::MixingGraph graph = mixgraph::buildMM(bigRatio());
  const forest::TaskForest f(graph, 64);
  obs::Session session;
  const obs::Scope scope(session);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::scheduleMMS(f, 4));
    benchmark::DoNotOptimize(sched::countStorage(f, sched::scheduleMMS(f, 4)));
  }
}
BENCHMARK(BM_ObsEnabledScheduling);

}  // namespace
