#include "obs/metrics.h"

#include <algorithm>
#include <stdexcept>

namespace dmf::obs {

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: bounds must be non-empty");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument("Histogram: bounds must be strictly ascending");
  }
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
}

double Histogram::quantile(double q) const {
  std::vector<std::uint64_t> counts(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts[i] = bucketCount(i);
  return histogramQuantile(bounds_, counts, q);
}

double histogramQuantile(const std::vector<std::uint64_t>& bounds,
                         const std::vector<std::uint64_t>& counts,
                         double q) {
  if (counts.size() != bounds.size() + 1) {
    throw std::invalid_argument(
        "histogramQuantile: counts must have bounds.size() + 1 entries");
  }
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  if (bounds.empty()) {
    // Degenerate shape (snapshot JSON can carry it even though the
    // Histogram class forbids it): every sample lives in the sole overflow
    // bucket and there is no finite bound to clamp to. Without this guard
    // both bounds.back() calls below would be undefined behaviour.
    return 0.0;
  }
  q = std::min(1.0, std::max(0.0, q));
  // The rank of the q-quantile observation, 1-based: the nearest-rank
  // definition, so q=0.5 of {1..4} targets rank 2.
  const double rank = std::max(1.0, q * static_cast<double>(total));

  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double inBucket = static_cast<double>(counts[i]);
    if (inBucket == 0.0) continue;
    if (cumulative + inBucket >= rank) {
      if (i == bounds.size()) {
        // Overflow bucket: no upper edge to interpolate toward. Clamp to
        // the last finite bound (a known underestimate, documented).
        return static_cast<double>(bounds.back());
      }
      const double lower =
          i == 0 ? 0.0 : static_cast<double>(bounds[i - 1]);
      const double upper = static_cast<double>(bounds[i]);
      const double fraction = (rank - cumulative) / inBucket;
      return lower + (upper - lower) * fraction;
    }
    cumulative += inBucket;
  }
  return static_cast<double>(bounds.back());
}

void Histogram::observe(std::uint64_t value) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t bucket =
      static_cast<std::size_t>(it - bounds_.begin());  // == size() -> overflow
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<std::uint64_t> bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

std::size_t MetricsRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

report::Json MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  report::Json out = report::Json::object();

  report::Json counters = report::Json::object();
  for (const auto& [name, counter] : counters_) {
    counters.set(name, counter->value());
  }
  out.set("counters", std::move(counters));

  report::Json gauges = report::Json::object();
  for (const auto& [name, gauge] : gauges_) {
    gauges.set(name, gauge->value());
  }
  out.set("gauges", std::move(gauges));

  report::Json histograms = report::Json::object();
  for (const auto& [name, histogram] : histograms_) {
    report::Json h = report::Json::object();
    report::Json bounds = report::Json::array();
    for (const std::uint64_t b : histogram->bounds()) {
      bounds.push(report::Json::number(b));
    }
    h.set("bounds", std::move(bounds));
    report::Json counts = report::Json::array();
    for (std::size_t i = 0; i <= histogram->bounds().size(); ++i) {
      counts.push(report::Json::number(histogram->bucketCount(i)));
    }
    h.set("counts", std::move(counts));
    h.set("count", histogram->count());
    h.set("sum", histogram->sum());
    histograms.set(name, std::move(h));
  }
  out.set("histograms", std::move(histograms));
  return out;
}

}  // namespace dmf::obs
