#include "report/chart.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "report/table.h"

namespace dmf::report {

std::string renderChart(const std::vector<Series>& series, unsigned width,
                        unsigned height) {
  double xMin = std::numeric_limits<double>::infinity();
  double xMax = -xMin;
  double yMin = 0.0;  // figures in the paper are zero-anchored
  double yMax = -std::numeric_limits<double>::infinity();
  bool any = false;
  for (const Series& s : series) {
    for (const auto& [x, y] : s.points) {
      xMin = std::min(xMin, x);
      xMax = std::max(xMax, x);
      yMax = std::max(yMax, y);
      any = true;
    }
  }
  if (!any || width < 2 || height < 2) return {};
  if (xMax == xMin) xMax = xMin + 1;
  if (yMax <= yMin) yMax = yMin + 1;

  std::vector<std::string> grid(height, std::string(width, ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = static_cast<char>('A' + (si % 26));
    for (const auto& [x, y] : series[si].points) {
      const auto col = static_cast<unsigned>(std::lround(
          (x - xMin) / (xMax - xMin) * (width - 1)));
      const auto row = static_cast<unsigned>(std::lround(
          (y - yMin) / (yMax - yMin) * (height - 1)));
      grid[height - 1 - row][col] = glyph;
    }
  }

  std::string out;
  for (unsigned r = 0; r < height; ++r) {
    const double yTop = yMax - (yMax - yMin) * r / (height - 1);
    std::string label = fixed(yTop, 1);
    label.insert(0, label.size() < 8 ? 8 - label.size() : 0, ' ');
    out += label + " |" + grid[r] + "\n";
  }
  out += std::string(9, ' ') + '+' + std::string(width, '-') + "\n";
  out += std::string(10, ' ') + "x: " + fixed(xMin, 0) + " .. " +
         fixed(xMax, 0) + "\n";
  for (std::size_t si = 0; si < series.size(); ++si) {
    out += std::string(10, ' ');
    out += static_cast<char>('A' + (si % 26));
    out += " = " + series[si].name + "\n";
  }
  return out;
}

}  // namespace dmf::report
