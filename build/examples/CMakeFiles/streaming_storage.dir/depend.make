# Empty dependencies file for streaming_storage.
# This may be replaced when dependencies are built.
