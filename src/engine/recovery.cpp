#include "engine/recovery.h"

#include <algorithm>
#include <deque>
#include <map>
#include <sstream>
#include <stdexcept>

#include "analysis/error_model.h"
#include "chip/executor.h"
#include "chip/router.h"
#include "obs/log.h"
#include "obs/scope.h"
#include "sched/schedulers.h"

namespace dmf::engine {
namespace {

constexpr std::uint32_t kNone = 0xFFFFFFFFu;

/// Where one operand droplet of a runtime task comes from.
enum class OperandKind : std::uint8_t {
  kDispense,     ///< reservoir dispense (leaf child)
  kDroplet,      ///< output droplet of another runtime task
  kAwaitRepair,  ///< droplet was lost/discarded; waiting for a replacement
};

struct Operand {
  OperandKind kind = OperandKind::kDispense;
  /// Producing runtime task (kDroplet) and its output slot.
  std::uint32_t producer = kNone;
  int slot = 0;
  /// Graph node the droplet realizes (repair matching key).
  mixgraph::NodeId node = mixgraph::kNoNode;
};

enum class DropStatus : std::uint8_t {
  kPending,    ///< not produced yet
  kLive,       ///< produced, awaiting consumption
  kConsumed,   ///< used as an operand
  kEmitted,    ///< delivered as a target droplet
  kWasted,     ///< discarded to waste by plan
  kLost,       ///< stuck in transport (fault)
  kDiscarded,  ///< flagged at a checkpoint and thrown away
};

struct RtDroplet {
  DropStatus status = DropStatus::kPending;
  /// Accumulated fault-induced CF deviation (worst fluid, first order).
  double cfErr = 0.0;
  /// Cycle the droplet's lineage first faulted; 0 = clean.
  unsigned faultCycle = 0;
  /// Already examined (and possibly cleared) by a checkpoint.
  bool flagged = false;
  mixgraph::NodeId node = mixgraph::kNoNode;
  forest::DropletFate fate = forest::DropletFate::kWaste;
  /// Consuming runtime task and operand slot when fate == kConsumed.
  std::uint32_t consumer = kNone;
  int consumerSlot = 0;
};

/// One mix-split instance in flight (base schedule or spliced repair).
struct RtTask {
  const forest::TaskForest* forest = nullptr;
  forest::TaskId id = forest::kNoTask;
  /// Absolute cycle the task is planned at (repair cycles are offset by the
  /// splice point); it never runs earlier, may run later.
  unsigned planned = 0;
  unsigned round = 0;
  bool done = false;
  Operand ops[2];
  RtDroplet out[2];
};

/// Per-node worst-fluid operand-CF spread |cf_i(l) - cf_i(r)| / 2 — the
/// first-order sensitivity of a node's output CF to a volumetric split
/// imbalance of its operands (see analysis/error_model.h).
std::vector<double> cfSpread(const mixgraph::MixingGraph& graph) {
  std::vector<double> spread(graph.nodeCount(), 0.0);
  for (mixgraph::NodeId v = 0; v < graph.nodeCount(); ++v) {
    const mixgraph::Node& n = graph.node(v);
    if (n.isLeaf()) continue;
    const dmf::MixtureValue& l = graph.node(n.left).value;
    const dmf::MixtureValue& r = graph.node(n.right).value;
    double worst = 0.0;
    for (std::size_t i = 0; i < l.fluidCount(); ++i) {
      const double d =
          l.concentration(i).toDouble() - r.concentration(i).toDouble();
      worst = std::max(worst, d < 0 ? -d : d);
    }
    spread[v] = worst / 2.0;
  }
  return spread;
}

/// Mutable state of one recovery run.
struct RunState {
  std::vector<RtTask> tasks;
  /// FIFO of operands awaiting a replacement droplet, per graph node.
  std::map<mixgraph::NodeId, std::deque<std::pair<std::uint32_t, int>>> waits;
  /// Needs flagged since the last repair round, per graph node.
  std::map<mixgraph::NodeId, std::uint64_t> repairNeed;
  /// Repair forests must outlive their runtime tasks.
  std::deque<forest::TaskForest> repairForests;
  std::uint64_t inputUsed = 0;
};

/// Appends the runtime tasks of one (forest, schedule) pair, planned at
/// `offset + assignment cycle`. Returns the index of the first new task.
std::uint32_t spliceTasks(RunState& state, const forest::TaskForest& forest,
                          const sched::Schedule& schedule, unsigned offset,
                          unsigned round) {
  const auto base = static_cast<std::uint32_t>(state.tasks.size());
  const mixgraph::MixingGraph& graph = forest.graph();
  for (forest::TaskId id = 0; id < forest.taskCount(); ++id) {
    const forest::Task& t = forest.task(id);
    RtTask rt;
    rt.forest = &forest;
    rt.id = id;
    rt.planned = offset + schedule.cycles[id];
    rt.round = round;
    const mixgraph::Node& node = graph.node(t.node);
    const forest::TaskId deps[2] = {t.depLeft, t.depRight};
    const mixgraph::NodeId children[2] = {node.left, node.right};
    for (int s = 0; s < 2; ++s) {
      Operand& op = rt.ops[s];
      op.node = children[s];
      if (deps[s] == forest::kNoTask) {
        op.kind = OperandKind::kDispense;
      } else {
        op.kind = OperandKind::kDroplet;
        op.producer = base + deps[s];
        // The producer's slot feeding this task is resolved below, once all
        // tasks exist.
      }
    }
    for (int s = 0; s < 2; ++s) {
      RtDroplet& d = rt.out[s];
      d.node = t.node;
      d.fate = t.out[s].fate;
      if (d.fate == forest::DropletFate::kConsumed) {
        d.consumer = base + t.out[s].consumer;
        const forest::Task& c = forest.task(t.out[s].consumer);
        d.consumerSlot = c.depLeft == id ? 0 : 1;
      }
    }
    state.tasks.push_back(rt);
  }
  // Second pass: point each kDroplet operand at the producer's output slot.
  for (std::uint32_t i = base; i < state.tasks.size(); ++i) {
    RtTask& rt = state.tasks[i];
    for (int s = 0; s < 2; ++s) {
      if (rt.ops[s].kind != OperandKind::kDroplet) continue;
      RtTask& prod = state.tasks[rt.ops[s].producer];
      const int slot = prod.out[0].consumer == i && prod.out[0].consumerSlot == s
                           ? 0
                           : 1;
      rt.ops[s].slot = slot;
    }
  }
  return base;
}

std::string taskTag(const RtTask& rt) {
  std::string tag = rt.forest->taskLabel(rt.id);
  if (rt.round > 0) tag += "/r" + std::to_string(rt.round);
  return tag;
}

}  // namespace

RecoveryEngine::RecoveryEngine(RecoveryOptions options)
    : options_(options) {
  if (options_.checkpoint.everyLevels == 0) {
    throw std::invalid_argument("recovery: checkpoint.everyLevels must be >= 1");
  }
  if (options_.retryBudget > 64) {
    throw std::invalid_argument("recovery: retryBudget must be <= 64");
  }
}

RecoveryReport RecoveryEngine::run(const forest::TaskForest& forest,
                                   const sched::Schedule& schedule) const {
  if (schedule.size() != forest.taskCount()) {
    throw std::invalid_argument(
        "recovery: schedule does not match the forest");
  }
  obs::Span span("recovery.run", "recovery");

  const mixgraph::MixingGraph& graph = forest.graph();
  const std::vector<double> spread = cfSpread(graph);
  const double threshold = options_.cfThreshold > 0.0
                               ? options_.cfThreshold
                               : analysis::quantizationError(graph);
  fault::FaultInjector injector(options_.faults, options_.seed);
  const bool faulty = options_.faults.any();

  RecoveryReport report;
  report.demand = forest.demand();
  report.baseCompletion = schedule.completionTime;
  report.retryBudget = options_.retryBudget;

  RunState state;
  state.tasks.reserve(forest.taskCount());
  spliceTasks(state, forest, schedule, 0, 0);
  state.inputUsed = forest.stats().inputTotal;

  unsigned effectiveMixers = schedule.mixerCount;
  unsigned backoffMul = 1;
  bool budgetStopped = false;  // no further repair rounds will be spliced
  const unsigned maxCycles =
      options_.maxCycles > 0
          ? options_.maxCycles
          : (4 * schedule.completionTime + 256) * (options_.retryBudget + 1);

  auto degrade = [&](const std::string& reason) {
    report.degraded = true;
    if (report.degradationReason.empty()) {
      report.degradationReason = reason;
      obs::LogLine(obs::LogLevel::kWarn, "recovery.degrade")
          .str("reason", reason);
    }
  };

  // Flags one repair need and (lazily) lets the next checkpoint splice it.
  auto flagNeed = [&](mixgraph::NodeId node) { ++state.repairNeed[node]; };

  std::vector<std::uint32_t> ready;
  unsigned cycle = 0;
  while (true) {
    ++cycle;
    if (cycle > maxCycles) {
      degrade("cycle limit reached (" + std::to_string(maxCycles) + ")");
      break;
    }

    // --- electrode deaths: one draw per cycle -------------------------------
    if (faulty && options_.faults.electrodeRate > 0.0 &&
        injector.electrodeDies()) {
      fault::FaultEvent ev;
      ev.kind = fault::FaultKind::kElectrodeDead;
      ev.cycle = cycle;
      if (options_.layout != nullptr) {
        const chip::Layout& layout = *options_.layout;
        const chip::Cell cell =
            injector.pickCell(layout.width(), layout.height());
        const bool fresh =
            std::find(report.deadCells.begin(), report.deadCells.end(),
                      cell) == report.deadCells.end();
        if (fresh) report.deadCells.push_back(cell);
        ev.detail = "cell (" + std::to_string(cell.x) + "," +
                    std::to_string(cell.y) + ") died";
        if (const auto mod = layout.moduleAt(cell); fresh && mod.has_value()) {
          const chip::Module& m = layout.module(*mod);
          // A dead electrode inside a module only disables the module once —
          // further deaths on its footprint change nothing.
          const bool firstHit = std::none_of(
              report.deadCells.begin(), report.deadCells.end() - 1,
              [&](const chip::Cell& c) { return m.contains(c); });
          if (firstHit && m.kind == chip::ModuleKind::kMixer) {
            ++report.mixersLost;
            effectiveMixers = effectiveMixers > 0 ? effectiveMixers - 1 : 0;
            ev.detail += " (mixer " + m.label + " lost)";
          } else if (firstHit && m.kind == chip::ModuleKind::kStorage) {
            ++report.storageLost;
            ev.detail += " (storage " + m.label + " lost)";
          }
        }
      } else {
        ev.detail = "electrode died (no layout: routing impact only)";
      }
      injector.record(std::move(ev));
      if (effectiveMixers == 0) {
        degrade("all mixers lost to electrode failures");
        break;
      }
    }

    // --- run ready tasks under the surviving mixer bank ---------------------
    ready.clear();
    for (std::uint32_t i = 0; i < state.tasks.size(); ++i) {
      const RtTask& rt = state.tasks[i];
      if (rt.done || rt.planned > cycle) continue;
      bool ok = true;
      for (const Operand& op : rt.ops) {
        if (op.kind == OperandKind::kAwaitRepair) ok = false;
        if (op.kind == OperandKind::kDroplet &&
            state.tasks[op.producer].out[op.slot].status != DropStatus::kLive) {
          ok = false;
        }
      }
      if (ok) ready.push_back(i);
    }
    std::sort(ready.begin(), ready.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                const RtTask& ta = state.tasks[a];
                const RtTask& tb = state.tasks[b];
                if (ta.planned != tb.planned) return ta.planned < tb.planned;
                return a < b;
              });
    if (ready.size() > effectiveMixers) ready.resize(effectiveMixers);

    bool executedAny = false;
    for (const std::uint32_t idx : ready) {
      RtTask& rt = state.tasks[idx];
      // Operand delivery: dispenses may misfire, transported droplets may
      // get stuck. Either way the mixer slot is spent for this cycle and
      // the task retries next cycle.
      bool delivered = true;
      for (int s = 0; s < 2 && delivered; ++s) {
        Operand& op = rt.ops[s];
        if (op.kind == OperandKind::kDispense) {
          if (faulty && injector.dispenseFails()) {
            fault::FaultEvent ev;
            ev.kind = fault::FaultKind::kDispenseFail;
            ev.cycle = cycle;
            ev.task = idx;
            ev.detail = taskTag(rt) + " dispense misfired";
            injector.record(std::move(ev));
            delivered = false;
          }
        } else {
          RtDroplet& d = state.tasks[op.producer].out[op.slot];
          if (faulty && injector.dropletLost()) {
            d.status = DropStatus::kLost;
            d.faultCycle = cycle;
            fault::FaultEvent ev;
            ev.kind = fault::FaultKind::kDropletLoss;
            ev.cycle = cycle;
            ev.task = idx;
            ev.detail = taskTag(rt) + " operand droplet stuck in transport";
            injector.record(std::move(ev));
            op.kind = OperandKind::kAwaitRepair;
            state.waits[op.node].emplace_back(idx, s);
            delivered = false;
          }
        }
      }
      if (!delivered) continue;

      // Execute the mix-split: consume operands, propagate CF error.
      double err[2] = {0.0, 0.0};
      unsigned inheritedFault = 0;
      for (int s = 0; s < 2; ++s) {
        const Operand& op = rt.ops[s];
        if (op.kind != OperandKind::kDroplet) continue;
        RtDroplet& d = state.tasks[op.producer].out[op.slot];
        d.status = DropStatus::kConsumed;
        err[s] = d.cfErr;
        if (d.faultCycle != 0 &&
            (inheritedFault == 0 || d.faultCycle < inheritedFault)) {
          inheritedFault = d.faultCycle;
        }
      }
      const forest::Task& ft = rt.forest->task(rt.id);
      double outErr = (err[0] + err[1]) / 2.0;
      unsigned faultCycle = inheritedFault;
      double eps = 0.0;
      if (faulty && injector.splitErrs(eps)) {
        outErr += spread[ft.node] * eps;
        if (faultCycle == 0) faultCycle = cycle;
        fault::FaultEvent ev;
        ev.kind = fault::FaultKind::kSplitImbalance;
        ev.cycle = cycle;
        ev.task = idx;
        ev.magnitude = eps;
        ev.detail = taskTag(rt) + " split imbalance";
        injector.record(std::move(ev));
      }
      for (int s = 0; s < 2; ++s) {
        RtDroplet& d = rt.out[s];
        d.cfErr = outErr;
        d.faultCycle = faultCycle;
        switch (d.fate) {
          case forest::DropletFate::kWaste:
            d.status = DropStatus::kWasted;
            break;
          case forest::DropletFate::kTarget:
            d.status = DropStatus::kEmitted;
            break;
          case forest::DropletFate::kConsumed:
            d.status = DropStatus::kLive;
            break;
        }
      }
      // A repair round's target droplet first replaces a waiting operand;
      // only a surplus one (a recalled bad target's re-make) is emitted.
      if (rt.round > 0) {
        for (int s = 0; s < 2; ++s) {
          RtDroplet& d = rt.out[s];
          if (d.status != DropStatus::kEmitted) continue;
          auto it = state.waits.find(d.node);
          if (it == state.waits.end() || it->second.empty()) continue;
          const auto [waiter, slot] = it->second.front();
          it->second.pop_front();
          Operand& op = state.tasks[waiter].ops[slot];
          op.kind = OperandKind::kDroplet;
          op.producer = idx;
          op.slot = s;
          d.status = DropStatus::kLive;
          d.fate = forest::DropletFate::kConsumed;
          d.consumer = waiter;
          d.consumerSlot = slot;
        }
      }
      rt.done = true;
      executedAny = true;
      report.completionCycle = cycle;
    }

    // --- checkpoint: sense, flag, and splice a repair round -----------------
    if (faulty && fault::isCheckpoint(cycle, options_.checkpoint, backoffMul)) {
      for (std::uint32_t i = 0; i < state.tasks.size(); ++i) {
        for (int s = 0; s < 2; ++s) {
          RtDroplet& d = state.tasks[i].out[s];
          if (d.flagged || d.faultCycle == 0) continue;
          if (d.status != DropStatus::kLive &&
              d.status != DropStatus::kEmitted &&
              d.status != DropStatus::kLost) {
            continue;
          }
          if (!fault::detectable(d.faultCycle, cycle, options_.checkpoint)) {
            continue;
          }
          d.flagged = true;
          if (d.status == DropStatus::kLost) {
            flagNeed(d.node);
            obs::count("recovery.losses_detected");
            continue;
          }
          if (d.cfErr <= threshold) continue;  // sensed, within tolerance
          // Corrupt: discard and demand a replacement droplet of its node.
          if (d.status == DropStatus::kLive &&
              d.consumer != kNone) {
            Operand& op = state.tasks[d.consumer].ops[d.consumerSlot];
            op.kind = OperandKind::kAwaitRepair;
            state.waits[op.node].emplace_back(d.consumer, d.consumerSlot);
          }
          d.status = DropStatus::kDiscarded;
          ++report.discarded;
          obs::count("recovery.droplets_discarded");
          flagNeed(d.node);
        }
      }

      if (!state.repairNeed.empty() && !budgetStopped) {
        if (report.roundsUsed >= options_.retryBudget) {
          budgetStopped = true;
          state.repairNeed.clear();
          degrade("retry budget exhausted (" +
                  std::to_string(options_.retryBudget) + " rounds)");
        } else {
          RepairRound round;
          round.cycle = cycle;
          for (const auto& [node, count] : state.repairNeed) {
            round.needs.push_back(forest::NodeDemand{node, count});
          }
          state.repairNeed.clear();
          state.repairForests.emplace_back(graph, round.needs);
          const forest::TaskForest& rf = state.repairForests.back();
          bool feasible = true;
          if (options_.inputBudget > 0 &&
              state.inputUsed + rf.stats().inputTotal > options_.inputBudget) {
            feasible = false;
            budgetStopped = true;
            degrade("input budget exhausted (" +
                    std::to_string(options_.inputBudget) + " droplets)");
          }
          sched::Schedule repairSchedule;
          if (feasible) {
            try {
              if (options_.storageCap > 0) {
                const unsigned cap =
                    options_.storageCap > report.storageLost
                        ? options_.storageCap - report.storageLost
                        : 0;
                repairSchedule =
                    sched::scheduleStorageCapped(rf, effectiveMixers, cap);
              } else {
                repairSchedule = sched::scheduleSRS(rf, effectiveMixers);
              }
            } catch (const std::exception& e) {
              feasible = false;
              budgetStopped = true;
              degrade(std::string("repair unschedulable: ") + e.what());
            }
          }
          if (feasible) {
            state.inputUsed += rf.stats().inputTotal;
            round.span = repairSchedule.completionTime;
            round.mixSplits = rf.stats().mixSplits;
            round.inputDroplets = rf.stats().inputTotal;
            if (options_.layout != nullptr) {
              try {
                chip::Router router(*options_.layout);
                chip::ChipExecutor executor(*options_.layout, router);
                round.actuations =
                    executor.run(rf, repairSchedule).totalCost;
              } catch (const std::exception&) {
                round.actuations = 0;  // accounting only; never fatal
              }
            }
            spliceTasks(state, rf, repairSchedule, cycle,
                        report.roundsUsed + 1);
            ++report.roundsUsed;
            report.extraMixSplits += round.mixSplits;
            report.extraInputDroplets += round.inputDroplets;
            report.extraActuations += round.actuations;
            obs::count("recovery.rounds");
            obs::count("recovery.repair_mixsplits", round.mixSplits);
            obs::LogLine(obs::LogLevel::kInfo, "recovery.splice")
                .num("cycle", cycle)
                .num("round", report.roundsUsed)
                .num("mix_splits", round.mixSplits)
                .num("input_droplets", round.inputDroplets)
                .num("span_cycles", round.span);
            if (backoffMul < (1u << 15)) backoffMul *= 2;
            report.rounds.push_back(std::move(round));
          } else {
            state.repairForests.pop_back();
          }
        }
      }
    }

    // --- termination --------------------------------------------------------
    bool anyRunnable = false;
    for (const RtTask& rt : state.tasks) {
      if (rt.done) continue;
      bool ok = true;
      for (const Operand& op : rt.ops) {
        if (op.kind == OperandKind::kAwaitRepair) ok = false;
        if (op.kind == OperandKind::kDroplet &&
            state.tasks[op.producer].out[op.slot].status !=
                DropStatus::kLive) {
          ok = false;
        }
      }
      if (ok) {
        anyRunnable = true;
        break;
      }
    }
    bool pendingFault = false;
    if (faulty && !budgetStopped &&
        report.roundsUsed <= options_.retryBudget) {
      for (const RtTask& rt : state.tasks) {
        for (const RtDroplet& d : rt.out) {
          if (!d.flagged && d.faultCycle != 0 &&
              (d.status == DropStatus::kLive ||
               d.status == DropStatus::kEmitted ||
               d.status == DropStatus::kLost)) {
            pendingFault = true;
            break;
          }
        }
        if (pendingFault) break;
      }
    }
    if (!executedAny && !anyRunnable && !pendingFault &&
        state.repairNeed.empty()) {
      break;
    }
  }

  // --- final accounting -----------------------------------------------------
  for (const RtTask& rt : state.tasks) {
    for (const RtDroplet& d : rt.out) {
      if (d.status != DropStatus::kEmitted) continue;
      ++report.delivered;
      if (d.cfErr > threshold) ++report.escapedErrors;
    }
  }
  if (report.delivered < report.demand) {
    report.shortfall = report.demand - report.delivered;
    degrade("demand shortfall");
  }
  report.faults = injector.events();
  if (report.completionCycle == 0) report.completionCycle = cycle;
  obs::gaugeSet("recovery.delivered", report.delivered);
  obs::gaugeSet("recovery.shortfall", report.shortfall);
  obs::gaugeSet("recovery.completion_cycle", report.completionCycle);
  return report;
}

std::string renderReport(const RecoveryReport& report) {
  std::ostringstream out;
  out << "recovery: " << report.delivered << "/" << report.demand
      << " targets delivered";
  if (report.shortfall > 0) out << " (shortfall " << report.shortfall << ")";
  out << "\n  faults injected: " << report.faults.size()
      << "  discarded: " << report.discarded
      << "  escaped: " << report.escapedErrors << "\n  repair rounds: "
      << report.roundsUsed << "/" << report.retryBudget
      << "  extra mix-splits: " << report.extraMixSplits
      << "  extra inputs: " << report.extraInputDroplets;
  if (report.extraActuations > 0) {
    out << "  extra actuations: " << report.extraActuations;
  }
  out << "\n  completion: cycle " << report.completionCycle << " (fault-free "
      << report.baseCompletion << ")";
  if (report.mixersLost > 0 || report.storageLost > 0) {
    out << "\n  hardware lost: " << report.mixersLost << " mixers, "
        << report.storageLost << " storage units";
  }
  if (report.degraded) {
    out << "\n  DEGRADED: " << report.degradationReason;
  }
  out << "\n";
  return out.str();
}

}  // namespace dmf::engine
