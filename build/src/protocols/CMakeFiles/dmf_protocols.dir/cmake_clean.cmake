file(REMOVE_RECURSE
  "CMakeFiles/dmf_protocols.dir/protocols.cpp.o"
  "CMakeFiles/dmf_protocols.dir/protocols.cpp.o.d"
  "libdmf_protocols.a"
  "libdmf_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmf_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
