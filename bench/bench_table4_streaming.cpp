// Reproduces Table 4: streaming the PCR master-mix with three on-chip mixers
// under fixed storage budgets. For each accuracy level d (the percentages
// re-approximated on scale 2^d), storage cap q' and demand D, report the
// number of passes and the total (time-cycles, waste droplets).
//
// Paper anchors (d=4): D=2 -> One (4,6) for every q'; D=16, q'>=5 -> One
// (7,0); larger demands under tight storage need Two/Three passes.
#include <iostream>

#include "engine/streaming.h"
#include "protocols/protocols.h"
#include "report/table.h"

int main() {
  using namespace dmf;

  std::cout << "# Table 4 — PCR master-mix streaming, 3 mixers, capped "
               "storage\n# cell format: passes (total cycles, total waste)\n\n";

  const std::vector<double>& percentages =
      protocols::pcrMasterMixPercentages();

  std::vector<std::string> headers{"D"};
  for (unsigned d : {4u, 5u, 6u}) {
    for (unsigned q : {3u, 5u, 7u}) {
      headers.push_back("d=" + std::to_string(d) +
                        ",q'=" + std::to_string(q));
    }
  }
  report::Table table(headers);

  for (std::uint64_t demand : {2u, 16u, 20u, 32u}) {
    std::vector<std::string> row{std::to_string(demand)};
    for (unsigned d : {4u, 5u, 6u}) {
      const Ratio ratio = protocols::approximatePercentages(percentages, d);
      engine::MdstEngine engine(ratio);
      for (unsigned cap : {3u, 5u, 7u}) {
        engine::StreamingRequest request;
        request.algorithm = mixgraph::Algorithm::MM;
        request.scheme = engine::Scheme::kSRS;
        request.demand = demand;
        request.storageCap = cap;
        request.mixers = 3;
        try {
          const engine::StreamingPlan plan = planStreaming(engine, request);
          row.push_back(std::to_string(plan.passes.size()) + " (" +
                        std::to_string(plan.totalCycles) + "," +
                        std::to_string(plan.totalWaste) + ")");
        } catch (const std::exception&) {
          row.push_back("infeasible");
        }
      }
    }
    table.addRow(std::move(row));
  }
  std::cout << table.render();

  std::cout << "\nApproximated ratios per accuracy level:\n";
  for (unsigned d : {4u, 5u, 6u}) {
    std::cout << "  d=" << d << " : "
              << protocols::approximatePercentages(percentages, d).toString()
              << "\n";
  }
  std::cout << "\nPaper (d=4): D=2 -> One(4,6); D=16 -> Two(10,7) at q'=3, "
               "One(7,0) at q'>=5;\nD=20 -> Two(11,5)/One(11,5); D=32 -> "
               "Three(17,7)/Two(14,0).\n";
  return 0;
}
