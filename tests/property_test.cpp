// Randomized property sweeps (seeded, deterministic): the library's
// invariants must hold on arbitrary valid inputs, not just the corpus and
// the paper's examples.
#include <gtest/gtest.h>

#include "check/oracles.h"
#include "dmf/errors.h"
#include "engine/baseline.h"
#include "engine/mdst.h"
#include "forest/task_forest.h"
#include "mixgraph/builders.h"
#include "sched/heterogeneous.h"
#include "sched/schedulers.h"
#include "workload/random_ratios.h"

namespace dmf {
namespace {

using forest::TaskForest;
using mixgraph::Algorithm;
using mixgraph::buildGraph;
using mixgraph::MixingGraph;

struct RandomSweepParam {
  std::uint64_t sum;
  std::size_t fluids;
  std::uint64_t seed;
};

class RandomRatioPropertyTest
    : public ::testing::TestWithParam<RandomSweepParam> {};

TEST_P(RandomRatioPropertyTest, ForestInvariantsHold) {
  workload::RandomRatioGenerator gen(GetParam().sum, GetParam().fluids,
                                     GetParam().seed);
  workload::RandomRatioGenerator demandGen(64, 2, GetParam().seed + 1);
  for (int trial = 0; trial < 12; ++trial) {
    const Ratio ratio = gen.next();
    // A pseudo-random demand in [1, 64].
    const std::uint64_t demand = demandGen.next().part(0);
    for (Algorithm algo : {Algorithm::MM, Algorithm::RMA, Algorithm::MTCS,
                           Algorithm::RSM}) {
      const MixingGraph g = buildGraph(ratio, algo);
      const TaskForest f(g, demand);
      // Conservation and bookkeeping.
      EXPECT_EQ(f.stats().inputTotal, f.stats().targets + f.stats().waste);
      EXPECT_EQ(f.stats().targets, demand);
      EXPECT_EQ(f.stats().componentTrees, (demand + 1) / 2);
      // Waste is bounded by one droplet per distinct mix node plus the odd
      // surplus target.
      EXPECT_LE(f.stats().waste, g.internalCount() + 1) << ratio.toString();
      // The independent re-derivations of src/check must agree too:
      // conservation from the task list, wiring edge by edge, and every
      // composition re-evaluated in exact dyadic arithmetic.
      check::CheckResult oracle;
      check::checkForestConservation(f, oracle);
      check::checkForestWiring(f, oracle);
      check::checkMixtureCorrectness(f, oracle);
      EXPECT_TRUE(oracle.ok())
          << ratio.toString() << " D=" << demand << "\n" << oracle.summary();
    }
  }
}

TEST_P(RandomRatioPropertyTest, SchedulersStayValidAndOrdered) {
  workload::RandomRatioGenerator gen(GetParam().sum, GetParam().fluids,
                                     GetParam().seed + 7);
  for (int trial = 0; trial < 6; ++trial) {
    const Ratio ratio = gen.next();
    const MixingGraph g = mixgraph::buildMM(ratio);
    const TaskForest f(g, 14);
    for (unsigned mixers : {1u, 3u}) {
      const sched::Schedule mms = sched::scheduleMMS(f, mixers);
      const sched::Schedule srs = sched::scheduleSRS(f, mixers);
      const sched::Schedule oms = sched::scheduleOMS(f, mixers);
      sched::validateOrThrow(f, mms);
      sched::validateOrThrow(f, srs);
      sched::validateOrThrow(f, oms);
      // The oracle library's independent re-derivation of validity, storage
      // counting and the SRS contract must agree with the production checks.
      check::CheckResult oracle;
      check::checkScheduledForest(f, mms, 0, oracle);
      check::checkScheduledForest(f, oms, 0, oracle);
      check::checkSrsContract(f, srs, mms, oracle);
      EXPECT_TRUE(oracle.ok())
          << ratio.toString() << " M=" << mixers << "\n" << oracle.summary();
      // The paper's SRS contract, point-wise.
      EXPECT_LE(sched::countStorage(f, srs), sched::countStorage(f, mms))
          << ratio.toString() << " M=" << mixers;
      // Nothing beats the critical path or the width bound.
      const unsigned lower = std::max<unsigned>(
          sched::criticalPathLength(f),
          static_cast<unsigned>((f.taskCount() + mixers - 1) / mixers));
      EXPECT_GE(mms.completionTime, lower);
      EXPECT_GE(oms.completionTime, lower);
    }
  }
}

TEST_P(RandomRatioPropertyTest, StorageCapLadderStaysWithinCap) {
  workload::RandomRatioGenerator gen(GetParam().sum, GetParam().fluids,
                                     GetParam().seed + 17);
  for (int trial = 0; trial < 3; ++trial) {
    const Ratio ratio = gen.next();
    const MixingGraph g = mixgraph::buildMM(ratio);
    const TaskForest f(g, 18);
    for (unsigned mixers : {1u, 2u}) {
      unsigned previous = 0;
      bool previousFeasible = false;
      for (unsigned cap = 1; cap <= 8; ++cap) {
        try {
          const sched::Schedule s =
              sched::scheduleStorageCapped(f, mixers, cap);
          check::CheckResult oracle;
          check::checkScheduledForest(f, s, cap, oracle);
          EXPECT_TRUE(oracle.ok()) << ratio.toString() << " M=" << mixers
                                   << " cap=" << cap << "\n"
                                   << oracle.summary();
          // Relaxing the cap can never make the schedule slower.
          if (previousFeasible) {
            EXPECT_LE(s.completionTime, previous)
                << ratio.toString() << " M=" << mixers << " cap=" << cap;
          }
          previous = s.completionTime;
          previousFeasible = true;
        } catch (const InfeasibleError&) {
          // A feasible cap can never become infeasible by loosening it.
          EXPECT_FALSE(previousFeasible)
              << ratio.toString() << " M=" << mixers << " cap=" << cap;
        }
      }
    }
  }
}

TEST_P(RandomRatioPropertyTest, DilutionSpecialCaseMatchesTwoFluidRatio) {
  // N = 2 dilution is Min-Mix restricted to {sample, buffer}: the graph must
  // carry the exact dyadic target and pass every forest oracle.
  workload::RandomRatioGenerator numeratorGen(64, 2, GetParam().seed + 23);
  for (unsigned accuracy : {3u, 5u, 7u}) {
    const std::uint64_t scale = std::uint64_t{1} << accuracy;
    // A pseudo-random numerator in [1, scale - 1].
    const std::uint64_t numerator =
        1 + numeratorGen.next().part(0) % (scale - 1);
    const MixingGraph dilution = mixgraph::buildDilution(numerator, accuracy);
    const Ratio expected({numerator, scale - numerator});
    EXPECT_EQ(dilution.ratio().toString(), expected.toString())
        << "numerator " << numerator << " accuracy " << accuracy;
    // Structurally it is exactly Min-Mix on the two-fluid ratio.
    const MixingGraph viaMinMix = buildGraph(expected, Algorithm::MM);
    EXPECT_EQ(dilution.internalCount(), viaMinMix.internalCount());
    EXPECT_EQ(dilution.leafCount(), viaMinMix.leafCount());
    EXPECT_EQ(dilution.depth(), viaMinMix.depth());
    const TaskForest f(dilution, 6);
    check::CheckResult oracle;
    check::checkForestConservation(f, oracle);
    check::checkForestWiring(f, oracle);
    check::checkMixtureCorrectness(f, oracle);
    EXPECT_TRUE(oracle.ok()) << oracle.summary();
  }
}

TEST_P(RandomRatioPropertyTest, HeterogeneousUnitBankEquivalence) {
  workload::RandomRatioGenerator gen(GetParam().sum, GetParam().fluids,
                                     GetParam().seed + 13);
  for (int trial = 0; trial < 4; ++trial) {
    const MixingGraph g = mixgraph::buildMM(gen.next());
    const TaskForest f(g, 10);
    const sched::MixerBank bank = sched::uniformBank(2);
    const sched::Schedule het = sched::scheduleHeterogeneous(f, bank);
    sched::validateHeterogeneous(f, het, bank);
    EXPECT_EQ(het.completionTime, sched::scheduleOMS(f, 2).completionTime);
  }
}

TEST_P(RandomRatioPropertyTest, RepeatedBaselineScalesExactly) {
  workload::RandomRatioGenerator gen(GetParam().sum, GetParam().fluids,
                                     GetParam().seed + 29);
  for (int trial = 0; trial < 4; ++trial) {
    engine::MdstEngine engine(gen.next());
    const engine::BaselineResult two =
        engine::runRepeatedBaseline(engine, Algorithm::MM, 2);
    const engine::BaselineResult many =
        engine::runRepeatedBaseline(engine, Algorithm::MM, 26);
    EXPECT_EQ(many.passes, 13u);
    EXPECT_EQ(many.completionTime, 13 * two.completionTime);
    EXPECT_EQ(many.inputDroplets, 13 * two.inputDroplets);
    EXPECT_EQ(many.waste, 13 * two.waste);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RandomRatioPropertyTest,
    ::testing::Values(RandomSweepParam{32, 3, 11},
                      RandomSweepParam{32, 7, 22},
                      RandomSweepParam{64, 5, 33},
                      RandomSweepParam{128, 9, 44},
                      RandomSweepParam{256, 4, 55}),
    [](const auto& paramInfo) {
      return "L" + std::to_string(paramInfo.param.sum) + "_N" +
             std::to_string(paramInfo.param.fluids) + "_s" +
             std::to_string(paramInfo.param.seed);
    });

}  // namespace
}  // namespace dmf
