// Droplet streaming under limited on-chip storage (paper section 6,
// Table 4): a demand of 64 PCR master-mix droplets must be met with only a
// handful of storage cells, so the engine splits the work into passes.
#include <iostream>

#include "engine/streaming.h"
#include "protocols/protocols.h"
#include "report/table.h"

int main() {
  using namespace dmf;

  const Ratio ratio = protocols::pcrMasterMixRatio();
  engine::MdstEngine engine(ratio);

  std::cout << "=== Streaming 64 droplets of " << ratio.toString()
            << " under storage caps ===\n\n";

  report::Table table({"storage cap q'", "per-pass D'", "passes",
                       "total cycles", "total waste", "total input",
                       "peak storage"});
  for (unsigned cap : {3u, 5u, 7u, 10u, 20u}) {
    engine::StreamingRequest request;
    request.algorithm = mixgraph::Algorithm::MM;
    request.scheme = engine::Scheme::kSRS;
    request.demand = 64;
    request.storageCap = cap;
    request.mixers = 3;
    try {
      const engine::StreamingPlan plan = planStreaming(engine, request);
      table.addRow({std::to_string(cap), std::to_string(plan.perPassDemand),
                    std::to_string(plan.passes.size()),
                    std::to_string(plan.totalCycles),
                    std::to_string(plan.totalWaste),
                    std::to_string(plan.totalInput),
                    std::to_string(plan.storageUnits)});
    } catch (const std::exception& e) {
      table.addRow({std::to_string(cap), "-", "-", "-", "-", "-",
                    std::string("infeasible")});
    }
  }
  std::cout << table.render()
            << "\nMore storage lets each pass cover more demand, so fewer "
               "passes, fewer wasted\ndroplets and fewer cycles — the paper's "
               "Table 4 trade-off.\n";
  return 0;
}
