// Sensing / checkpoint model for error detection (DESIGN.md §11).
//
// A DMF chip cannot observe droplet concentration continuously: sensing
// happens at checkpoints (optical detectors or capacitive sensors polled
// between mix-split levels), and a measurement only becomes available after
// a detection latency. This header models both knobs:
//
//  * `everyLevels` — a checkpoint runs after every k-th mix-split cycle.
//    Coarser granularity is cheaper on-chip but lets a corrupted droplet
//    contaminate more descendants before it is caught.
//  * `detectionLatency` — cycles between a fault occurring and the earliest
//    checkpoint that can flag it (sensor integration + readout time).
//
// The recovery engine (engine/recovery.h) additionally doubles the
// effective checkpoint interval after each repair round — exponential
// backoff, so a chip that keeps faulting spends progressively less of its
// time sensing and more of it making forward progress.
#pragma once

#include <cstdint>

namespace dmf::fault {

/// Sensing granularity and latency.
struct CheckpointOptions {
  /// Run a checkpoint after every k-th mix cycle (>= 1).
  unsigned everyLevels = 1;
  /// Cycles between a fault firing and the first checkpoint able to see it.
  unsigned detectionLatency = 0;
};

/// True when `cycle` (1-based mix cycle just completed) is a checkpoint
/// under interval `everyLevels * backoffMul`.
[[nodiscard]] bool isCheckpoint(unsigned cycle, const CheckpointOptions& opts,
                                unsigned backoffMul);

/// True when a fault that fired at `faultCycle` is visible to a checkpoint
/// running after cycle `now` (latency elapsed).
[[nodiscard]] bool detectable(unsigned faultCycle, unsigned now,
                              const CheckpointOptions& opts);

}  // namespace dmf::fault
