# ctest helper: end-to-end crash recovery through the CLI (DESIGN.md §16).
# Kills a journaled stream run at a pass boundary via the --crash-after-pass
# hook (hard exit 86, no destructors — only the fsync'd journal survives),
# resumes it, and pins the resumed JSON byte-identical to an uninterrupted
# run. Then damages the snapshot and pins the exit-5 corruption path, and
# resumes with a different request to pin the exit-1 fingerprint rejection.
# Run as
#   cmake -DDMFSTREAM=<path-to-binary> -DWORKDIR=<scratch dir> -P check_crash_resume.cmake
if(NOT DEFINED DMFSTREAM)
  message(FATAL_ERROR "pass -DDMFSTREAM=<path to dmfstream>")
endif()
if(NOT DEFINED WORKDIR)
  message(FATAL_ERROR "pass -DWORKDIR=<scratch directory>")
endif()

file(REMOVE_RECURSE ${WORKDIR})
file(MAKE_DIRECTORY ${WORKDIR})
set(journal ${WORKDIR}/journal)
set(request --ratio 2:1:1:1:1:1:9 --demand 32 --storage 3
    --inject loss=0.2 --fault-seed 3 --json)

# 1. The uninterrupted twin: reference bytes.
execute_process(
  COMMAND ${DMFSTREAM} stream ${request}
  OUTPUT_VARIABLE reference
  RESULT_VARIABLE status)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "reference run failed with ${status}")
endif()

# 2. Crash after two journaled passes: the hook hard-exits with 86.
execute_process(
  COMMAND ${DMFSTREAM} stream ${request}
          --journal ${journal} --snapshot-every 2 --crash-after-pass 2
  OUTPUT_VARIABLE crash_out
  ERROR_VARIABLE crash_err
  RESULT_VARIABLE status)
if(NOT status EQUAL 86)
  message(FATAL_ERROR "crash hook exited with ${status}, expected 86: ${crash_err}")
endif()
if(NOT crash_err MATCHES "crash hook")
  message(FATAL_ERROR "crash hook did not announce itself on stderr")
endif()
if(NOT EXISTS ${journal}/snapshot.json)
  message(FATAL_ERROR "crashed run left no snapshot behind")
endif()

# 3. Resume: byte-identical to the uninterrupted run.
execute_process(
  COMMAND ${DMFSTREAM} stream ${request} --journal ${journal} --resume
  OUTPUT_VARIABLE resumed
  ERROR_VARIABLE resume_err
  RESULT_VARIABLE status)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "resume failed with ${status}: ${resume_err}")
endif()
if(NOT resumed STREQUAL reference)
  message(FATAL_ERROR "resumed output is not byte-identical to the uninterrupted run")
endif()

# 4. Corruption: a snapshot that is not one intact CRC-framed record must be
# rejected with the dedicated exit code 5, never half-trusted.
execute_process(
  COMMAND ${DMFSTREAM} stream ${request}
          --journal ${journal} --snapshot-every 2 --crash-after-pass 2
  OUTPUT_QUIET ERROR_QUIET RESULT_VARIABLE status)
if(NOT status EQUAL 86)
  message(FATAL_ERROR "second crash run exited with ${status}, expected 86")
endif()
file(WRITE ${journal}/snapshot.json "damaged bytes, not a framed record")
execute_process(
  COMMAND ${DMFSTREAM} stream ${request} --journal ${journal} --resume
  OUTPUT_QUIET
  ERROR_VARIABLE corrupt_err
  RESULT_VARIABLE status)
if(NOT status EQUAL 5)
  message(FATAL_ERROR "corrupt snapshot exited with ${status}, expected 5")
endif()
if(NOT corrupt_err MATCHES "corrupt journal")
  message(FATAL_ERROR "corruption message missing: ${corrupt_err}")
endif()

# 5. Fingerprint: a journal written by a different request is a usage error
# (exit 1), not corruption and not a silent wrong answer.
execute_process(
  COMMAND ${DMFSTREAM} stream ${request}
          --journal ${journal} --crash-after-pass 1
  OUTPUT_QUIET ERROR_QUIET RESULT_VARIABLE status)
if(NOT status EQUAL 86)
  message(FATAL_ERROR "third crash run exited with ${status}, expected 86")
endif()
execute_process(
  COMMAND ${DMFSTREAM} stream --ratio 2:1:1:1:1:1:9 --demand 64 --storage 3
          --inject loss=0.2 --fault-seed 3 --json
          --journal ${journal} --resume
  OUTPUT_QUIET
  ERROR_VARIABLE mismatch_err
  RESULT_VARIABLE status)
if(NOT status EQUAL 1)
  message(FATAL_ERROR "fingerprint mismatch exited with ${status}, expected 1")
endif()
if(NOT mismatch_err MATCHES "different request")
  message(FATAL_ERROR "fingerprint message missing: ${mismatch_err}")
endif()

message(STATUS "crash/resume: byte-identical resume, exit-5 corruption, exit-1 mismatch all pinned")
