// Pluggable per-user arbitration for the fleet dispatcher (DESIGN.md §17).
//
// The dispatcher admits every pass of every user's streaming plan as a
// WorkItem and asks the policy, one dispatch decision at a time, *whose*
// work runs next; the dispatcher then decides *where* (chip placement) and
// executes it. Three policies ship behind one interface:
//
//  * fifo — global admission order, no fairness;
//  * rr   — round-robin over backlogged users, one item per turn;
//  * wfq  — start-time fair queueing with optional service quanta: each
//    user's next item carries a virtual start tag max(v, lastFinish(u)),
//    finish = start + cost / weight, and the policy serves the smallest
//    start tag (ties to the lowest user id). A quantum > 0 keeps serving
//    the picked user until that much service is dispatched, batching
//    same-user work like a deficit round-robin scheduler.
//
// All three are strictly deterministic: decisions depend only on the
// admitted items and the configured weights/quantum, never on wall-clock
// time or thread interleaving, so fleet runs stay byte-identical across
// --jobs.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace dmf::fleet {

/// One admitted unit of work: a single pass of one user's streaming plan.
struct WorkItem {
  unsigned user = 0;
  /// Global admission sequence number — the stable intra-user order key.
  /// A migrated pass re-enters with its original admission number, so it
  /// precedes later passes of the same user.
  std::uint64_t admission = 0;
  /// Index of the pass in the user's StreamingPlan.
  std::uint64_t passIndex = 0;
  /// Service cost in cycles (the pass completion time; always >= 1).
  std::uint64_t cost = 1;
  /// Placement requirements: mixers and storage the hosting chip must have.
  unsigned minMixers = 1;
  unsigned minStorage = 0;
  /// Execution attempt (1 on admission; bumped by each migration).
  unsigned attempt = 1;
};

/// The arbitration interface (shape follows the ssd-fairness scheduler:
/// enqueue / pick_user / pop plus set_users / set_weights / set_quantum).
class ArbitrationPolicy {
 public:
  virtual ~ArbitrationPolicy() = default;

  /// Declares the user population [0, users). Resets all queues.
  virtual void setUsers(unsigned users) = 0;
  /// Per-user weights (size must match setUsers; every weight > 0). The
  /// base classes ignore weights; wfq validates and applies them. Throws
  /// std::invalid_argument on a size mismatch or non-positive weight.
  virtual void setWeights(const std::vector<double>& weights);
  /// Service quantum in cost units; 0 disables batching. Only wfq uses it.
  virtual void setQuantum(double quantum);

  /// Admits one item. item.user must be < setUsers' count.
  virtual void enqueue(const WorkItem& item) = 0;
  /// The user whose work should run next, or nullopt when idle. `now` is
  /// the dispatcher's current virtual cycle (informational; the shipped
  /// policies are self-clocked and ignore it). Does not consume anything.
  [[nodiscard]] virtual std::optional<unsigned> pickUser(double now) = 0;
  /// Removes and returns the user's earliest pending item (by admission
  /// number), accounting its service. nullopt when the user has no backlog.
  [[nodiscard]] virtual std::optional<WorkItem> pop(unsigned user) = 0;

  [[nodiscard]] virtual bool empty() const = 0;
  /// Total items currently queued.
  [[nodiscard]] virtual std::size_t pending() const = 0;
  [[nodiscard]] virtual const char* name() const = 0;
};

/// Global admission order, blind to users and weights.
class FifoPolicy final : public ArbitrationPolicy {
 public:
  void setUsers(unsigned users) override;
  void enqueue(const WorkItem& item) override;
  [[nodiscard]] std::optional<unsigned> pickUser(double now) override;
  [[nodiscard]] std::optional<WorkItem> pop(unsigned user) override;
  [[nodiscard]] bool empty() const override { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const override { return queue_.size(); }
  [[nodiscard]] const char* name() const override { return "fifo"; }

 private:
  unsigned users_ = 0;
  std::deque<WorkItem> queue_;  // ascending admission order
};

/// One item per backlogged user per turn, rotating in user-id order.
class RoundRobinPolicy final : public ArbitrationPolicy {
 public:
  void setUsers(unsigned users) override;
  void enqueue(const WorkItem& item) override;
  [[nodiscard]] std::optional<unsigned> pickUser(double now) override;
  [[nodiscard]] std::optional<WorkItem> pop(unsigned user) override;
  [[nodiscard]] bool empty() const override;
  [[nodiscard]] std::size_t pending() const override;
  [[nodiscard]] const char* name() const override { return "rr"; }

 private:
  std::vector<std::deque<WorkItem>> queues_;
  unsigned cursor_ = 0;
};

/// Start-time fair queueing with service quanta (see file comment).
class WeightedFairPolicy final : public ArbitrationPolicy {
 public:
  void setUsers(unsigned users) override;
  void setWeights(const std::vector<double>& weights) override;
  void setQuantum(double quantum) override { quantum_ = quantum; }
  void enqueue(const WorkItem& item) override;
  [[nodiscard]] std::optional<unsigned> pickUser(double now) override;
  [[nodiscard]] std::optional<WorkItem> pop(unsigned user) override;
  [[nodiscard]] bool empty() const override;
  [[nodiscard]] std::size_t pending() const override;
  [[nodiscard]] const char* name() const override { return "wfq"; }

  /// The policy's virtual time (exposed for tests).
  [[nodiscard]] double virtualTime() const { return vtime_; }

 private:
  /// Virtual start tag of the user's head item: max(v, lastFinish(user)).
  [[nodiscard]] double startTag(unsigned user) const;

  std::vector<std::deque<WorkItem>> queues_;
  std::vector<double> weights_;
  std::vector<double> lastFinish_;
  double vtime_ = 0.0;
  double quantum_ = 0.0;
  double quantumLeft_ = 0.0;
  std::optional<unsigned> current_;
};

/// Factory for "fifo" | "rr" | "wfq". Throws std::invalid_argument on an
/// unknown name.
[[nodiscard]] std::unique_ptr<ArbitrationPolicy> makePolicy(
    const std::string& name);

/// Parses "8,1,1" into weights. Throws std::invalid_argument on an empty
/// list, an unparsable entry, or a non-positive weight.
[[nodiscard]] std::vector<double> parseWeights(const std::string& spec);

}  // namespace dmf::fleet
