#include "chip/router.h"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace dmf::chip {

Router::Router(const Layout& layout) : layout_(&layout) {
  costs_.assign(layout.moduleCount(),
                std::vector<unsigned>(layout.moduleCount(), kUnknown));
}

Route Router::bfs(ModuleId from, ModuleId to) const {
  const Layout& layout = *layout_;
  const int w = layout.width();
  const int h = layout.height();
  auto index = [w](const Cell& c) {
    return static_cast<std::size_t>(c.y) * static_cast<std::size_t>(w) +
           static_cast<std::size_t>(c.x);
  };

  // A cell is traversable when free or inside one of the endpoint modules.
  auto passable = [&](const Cell& c) {
    const auto occupant = layout.moduleAt(c);
    return !occupant.has_value() || *occupant == from || *occupant == to;
  };

  const Cell start = layout.module(from).port();
  const Cell goal = layout.module(to).port();
  std::vector<int> parent(static_cast<std::size_t>(w) *
                              static_cast<std::size_t>(h),
                          -2);
  std::deque<Cell> frontier{start};
  parent[index(start)] = -1;
  while (!frontier.empty()) {
    const Cell c = frontier.front();
    frontier.pop_front();
    if (c == goal) break;
    const Cell next[4] = {{c.x + 1, c.y}, {c.x - 1, c.y},
                          {c.x, c.y + 1}, {c.x, c.y - 1}};
    for (const Cell& n : next) {
      if (n.x < 0 || n.y < 0 || n.x >= w || n.y >= h) continue;
      if (!passable(n) || parent[index(n)] != -2) continue;
      parent[index(n)] = static_cast<int>(index(c));
      frontier.push_back(n);
    }
  }
  if (parent[index(goal)] == -2) {
    throw std::runtime_error("Router: no path between '" +
                             layout.module(from).label + "' and '" +
                             layout.module(to).label + "'");
  }

  Route route;
  for (Cell c = goal;;) {
    route.cells.push_back(c);
    const int p = parent[index(c)];
    if (p < 0) break;
    c = Cell{static_cast<int>(static_cast<std::size_t>(p) %
                              static_cast<std::size_t>(w)),
             static_cast<int>(static_cast<std::size_t>(p) /
                              static_cast<std::size_t>(w))};
  }
  std::reverse(route.cells.begin(), route.cells.end());
  return route;
}

Route Router::route(ModuleId from, ModuleId to) const {
  Route r = bfs(from, to);
  costs_[from][to] = r.cost();
  costs_[to][from] = r.cost();
  return r;
}

unsigned Router::cost(ModuleId from, ModuleId to) const {
  if (from == to) return 0;
  if (costs_[from][to] == kUnknown) {
    (void)route(from, to);
  }
  return costs_[from][to];
}

const std::vector<std::vector<unsigned>>& Router::costMatrix() const {
  if (!matrixComplete_) {
    for (ModuleId a = 0; a < layout_->moduleCount(); ++a) {
      costs_[a][a] = 0;
      for (ModuleId b = static_cast<ModuleId>(a + 1);
           b < layout_->moduleCount(); ++b) {
        (void)cost(a, b);
      }
    }
    matrixComplete_ = true;
  }
  return costs_;
}

std::string Router::renderCostMatrix() const {
  const auto& matrix = costMatrix();
  std::size_t width = 4;
  for (const Module& m : layout_->modules()) {
    width = std::max(width, m.label.size() + 1);
  }
  auto pad = [width](std::string text) {
    if (text.size() < width) text.insert(0, width - text.size(), ' ');
    return text;
  };
  std::string out = pad("");
  for (const Module& m : layout_->modules()) {
    out += pad(m.label);
  }
  out += '\n';
  for (ModuleId a = 0; a < layout_->moduleCount(); ++a) {
    out += pad(layout_->module(a).label);
    for (ModuleId b = 0; b < layout_->moduleCount(); ++b) {
      out += pad(std::to_string(matrix[a][b]));
    }
    out += '\n';
  }
  return out;
}

}  // namespace dmf::chip
