#include "engine/baseline.h"

#include <stdexcept>

namespace dmf::engine {

BaselineResult runRepeatedBaseline(const MdstEngine& engine,
                                   mixgraph::Algorithm algorithm,
                                   std::uint64_t demand, unsigned mixers) {
  if (demand == 0) {
    throw std::invalid_argument("runRepeatedBaseline: demand must be positive");
  }
  const unsigned mc = mixers == 0 ? engine.defaultMixers() : mixers;

  // One pass: the base graph at demand 2 (its natural two-droplet emission),
  // optimally scheduled. Every later pass is identical.
  const forest::TaskForest pass = engine.buildForest(algorithm, 2);
  const sched::Schedule s = sched::scheduleOMS(pass, mc);

  BaselineResult r;
  r.passes = (demand + 1) / 2;
  r.passCycles = s.completionTime;
  r.completionTime = r.passes * s.completionTime;
  r.storageUnits = sched::countStorage(pass, s);
  r.mixSplits = r.passes * pass.stats().mixSplits;
  r.waste = r.passes * pass.stats().waste +
            (demand % 2 == 1 ? 1 : 0);  // odd demand discards one target
  r.inputDroplets = r.passes * pass.stats().inputTotal;
  r.mixers = mc;
  return r;
}

double percentImprovement(double baseline, double ours) {
  if (baseline == 0.0) return 0.0;
  return 100.0 * (baseline - ours) / baseline;
}

}  // namespace dmf::engine
