#include "fault/checkpoint.h"

namespace dmf::fault {

bool isCheckpoint(unsigned cycle, const CheckpointOptions& opts,
                  unsigned backoffMul) {
  unsigned interval = opts.everyLevels < 1 ? 1 : opts.everyLevels;
  if (backoffMul > 1) interval *= backoffMul;
  return cycle % interval == 0;
}

bool detectable(unsigned faultCycle, unsigned now,
                const CheckpointOptions& opts) {
  return now >= faultCycle + opts.detectionLatency;
}

}  // namespace dmf::fault
