#include "chip/layout.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "chip/executor.h"
#include "chip/pcr_layout.h"
#include "chip/placer.h"
#include "chip/router.h"
#include "engine/baseline.h"
#include "engine/mdst.h"
#include "mixgraph/builders.h"
#include "sched/schedulers.h"

namespace dmf::chip {
namespace {

using forest::TaskForest;
using mixgraph::buildMM;
using mixgraph::MixingGraph;

Ratio pcr() { return Ratio({2, 1, 1, 1, 1, 1, 9}); }

TEST(Layout, RejectsTinyArray) {
  EXPECT_THROW(Layout(2, 8), std::invalid_argument);
}

TEST(Layout, RejectsOutOfBoundsModules) {
  Layout layout(8, 8);
  EXPECT_THROW(
      layout.add(Module{ModuleKind::kMixer, Cell{7, 7}, 2, 2, 0, "M1"}),
      std::invalid_argument);
  EXPECT_THROW(
      layout.add(Module{ModuleKind::kMixer, Cell{-1, 0}, 2, 2, 0, "M1"}),
      std::invalid_argument);
}

TEST(Layout, RejectsOverlap) {
  Layout layout(10, 10);
  layout.add(Module{ModuleKind::kMixer, Cell{2, 2}, 2, 2, 0, "M1"});
  EXPECT_THROW(
      layout.add(Module{ModuleKind::kMixer, Cell{3, 3}, 2, 2, 0, "M2"}),
      std::invalid_argument);
}

TEST(Layout, ModuleLookup) {
  Layout layout(10, 10);
  const ModuleId mixer =
      layout.add(Module{ModuleKind::kMixer, Cell{2, 2}, 2, 2, 0, "M1"});
  const ModuleId res =
      layout.add(Module{ModuleKind::kReservoir, Cell{0, 0}, 1, 1, 4, "R5"});
  EXPECT_EQ(layout.moduleAt(Cell{3, 3}), mixer);
  EXPECT_EQ(layout.moduleAt(Cell{5, 5}), std::nullopt);
  EXPECT_EQ(layout.reservoirFor(4), res);
  EXPECT_THROW((void)layout.reservoirFor(0), std::invalid_argument);
  EXPECT_EQ(layout.byKind(ModuleKind::kMixer).size(), 1u);
}

TEST(Layout, PcrLayoutMatchesFig5Inventory) {
  const Layout layout = makePcrLayout();
  EXPECT_EQ(layout.byKind(ModuleKind::kReservoir).size(), 7u);
  EXPECT_EQ(layout.byKind(ModuleKind::kMixer).size(), 3u);
  EXPECT_EQ(layout.byKind(ModuleKind::kStorage).size(), 5u);
  EXPECT_EQ(layout.byKind(ModuleKind::kWaste).size(), 2u);
  EXPECT_EQ(layout.byKind(ModuleKind::kOutput).size(), 1u);
  EXPECT_TRUE(layout.hasSegregationSpacing());
}

TEST(Layout, RenderShowsModules) {
  const std::string text = makePcrLayout().render();
  EXPECT_NE(text.find('M'), std::string::npos);
  EXPECT_NE(text.find('R'), std::string::npos);
  EXPECT_NE(text.find('q'), std::string::npos);
}

TEST(Router, CostsAreSymmetricAndAtLeastManhattan) {
  const Layout layout = makePcrLayout();
  Router router(layout);
  const auto& matrix = router.costMatrix();
  for (ModuleId a = 0; a < layout.moduleCount(); ++a) {
    EXPECT_EQ(matrix[a][a], 0u);
    for (ModuleId b = 0; b < layout.moduleCount(); ++b) {
      EXPECT_EQ(matrix[a][b], matrix[b][a]);
      EXPECT_GE(matrix[a][b] + 0,
                manhattan(layout.module(a).port(), layout.module(b).port()));
    }
  }
}

TEST(Router, RouteAvoidsForeignModules) {
  const Layout layout = makePcrLayout();
  Router router(layout);
  const auto mixers = layout.byKind(ModuleKind::kMixer);
  const Route route = router.route(mixers[0], mixers[2]);
  for (const Cell& c : route.cells) {
    const auto occupant = layout.moduleAt(c);
    if (occupant.has_value()) {
      EXPECT_TRUE(*occupant == mixers[0] || *occupant == mixers[2]);
    }
  }
  EXPECT_EQ(route.cells.front(), layout.module(mixers[0]).port());
  EXPECT_EQ(route.cells.back(), layout.module(mixers[2]).port());
}

TEST(Router, ThrowsWhenWalledIn) {
  Layout layout(7, 7);
  const ModuleId a =
      layout.add(Module{ModuleKind::kMixer, Cell{0, 0}, 1, 1, 0, "A"});
  // Wall off the top-left corner.
  layout.add(Module{ModuleKind::kWaste, Cell{1, 0}, 1, 1, 0, "w1"});
  layout.add(Module{ModuleKind::kWaste, Cell{0, 1}, 1, 1, 0, "w2"});
  layout.add(Module{ModuleKind::kWaste, Cell{1, 1}, 1, 1, 0, "w3"});
  const ModuleId b =
      layout.add(Module{ModuleKind::kMixer, Cell{5, 5}, 1, 1, 0, "B"});
  Router router(layout);
  EXPECT_THROW(router.route(a, b), std::runtime_error);
}

TEST(Executor, RunsTheFig5Workload) {
  const Layout layout = makePcrLayout();
  Router router(layout);
  ChipExecutor executor(layout, router);

  MixingGraph g = buildMM(pcr());
  TaskForest f(g, 20);
  const sched::Schedule s = sched::scheduleSRS(f, 3);
  const ExecutionTrace trace = executor.run(f, s);

  EXPECT_GT(trace.totalCost, 0u);
  // Droplet accounting: one dispense per input droplet, one output move per
  // target, one waste move per waste droplet.
  std::size_t dispenses = 0;
  std::size_t outputs = 0;
  std::size_t wastes = 0;
  for (const Move& m : trace.moves) {
    dispenses += m.kind == MoveKind::kDispense ? 1 : 0;
    outputs += m.kind == MoveKind::kToOutput ? 1 : 0;
    wastes += m.kind == MoveKind::kToWaste ? 1 : 0;
  }
  EXPECT_EQ(dispenses, f.stats().inputTotal);
  EXPECT_EQ(outputs, f.stats().targets);
  EXPECT_EQ(wastes, f.stats().waste);
  // Storage occupancy observed on chip equals Algorithm 3's count.
  EXPECT_EQ(trace.peakStorageUsed, sched::countStorage(f, s));
}

TEST(Executor, ParkAndUnparkComeInPairs) {
  const Layout layout = makePcrLayout();
  Router router(layout);
  ChipExecutor executor(layout, router);
  MixingGraph g = buildMM(pcr());
  TaskForest f(g, 20);
  const ExecutionTrace trace = executor.run(f, sched::scheduleSRS(f, 3));
  std::size_t parks = 0;
  std::size_t unparks = 0;
  for (const Move& m : trace.moves) {
    parks += m.kind == MoveKind::kPark ? 1 : 0;
    unparks += m.kind == MoveKind::kUnpark ? 1 : 0;
  }
  EXPECT_EQ(parks, unparks);
  EXPECT_GT(parks, 0u);
}

TEST(Executor, ThrowsWhenStorageIsShort)
{
  // One storage cell cannot hold the five parked droplets of the SRS run.
  const Layout layout = synthesizeLayout(7, 3, 1);
  Router router(layout);
  ChipExecutor executor(layout, router);
  MixingGraph g = buildMM(pcr());
  TaskForest f(g, 20);
  EXPECT_THROW((void)executor.run(f, sched::scheduleSRS(f, 3)),
               std::runtime_error);
}

TEST(Executor, HeatMapSumsToTotalCost) {
  const Layout layout = makePcrLayout();
  Router router(layout);
  ChipExecutor executor(layout, router);
  MixingGraph g = buildMM(pcr());
  TaskForest f(g, 8);
  const ExecutionTrace trace = executor.run(f, sched::scheduleSRS(f, 3));
  std::uint64_t heat = 0;
  for (const auto& row : trace.actuations) {
    for (unsigned c : row) heat += c;
  }
  EXPECT_EQ(heat, trace.totalCost);
  EXPECT_GT(trace.peakActuations, 0u);
}

TEST(Executor, ForestBeatsRepeatedBaselineOnActuations) {
  // The Fig. 5 claim: the streaming engine needs far fewer electrode
  // actuations than repeated single-pass mixing (386 vs 980 in the paper).
  const Layout layout = makePcrLayout();
  Router router(layout);
  ChipExecutor executor(layout, router);
  MixingGraph g = buildMM(pcr());

  TaskForest forest(g, 20);
  const ExecutionTrace ours =
      executor.run(forest, sched::scheduleSRS(forest, 3));

  TaskForest pass(g, 2);
  const ExecutionTrace perPass =
      executor.run(pass, sched::scheduleOMS(pass, 3));
  const std::uint64_t repeated = perPass.totalCost * 10;  // D=20 -> 10 passes

  EXPECT_LT(ours.totalCost, repeated);
  EXPECT_LT(static_cast<double>(ours.totalCost),
            0.7 * static_cast<double>(repeated));
}

TEST(Executor, RejectsScheduleWiderThanMixerBank) {
  const Layout layout = synthesizeLayout(7, 2, 5);
  Router router(layout);
  ChipExecutor executor(layout, router);
  MixingGraph g = buildMM(pcr());
  TaskForest f(g, 8);
  EXPECT_THROW((void)executor.run(f, sched::scheduleSRS(f, 3)),
               std::invalid_argument);
}

TEST(Placer, ImprovesRandomizedCost) {
  const Layout layout = makePcrLayout();
  Router router(layout);
  ChipExecutor executor(layout, router);
  MixingGraph g = buildMM(pcr());
  TaskForest f(g, 20);
  const ExecutionTrace trace = executor.run(f, sched::scheduleSRS(f, 3));
  const FlowMatrix flow = flowFromTrace(trace, layout.moduleCount());

  AnnealOptions options;
  options.iterations = 5000;
  const Layout optimized = annealPlacement(layout, flow, options);
  EXPECT_LE(placementCost(optimized, flow), placementCost(layout, flow));
  EXPECT_EQ(optimized.moduleCount(), layout.moduleCount());
}

TEST(Placer, DeterministicForSeed) {
  const Layout layout = makePcrLayout();
  FlowMatrix flow(layout.moduleCount(),
                  std::vector<double>(layout.moduleCount(), 1.0));
  AnnealOptions options;
  options.iterations = 2000;
  const Layout a = annealPlacement(layout, flow, options);
  const Layout b = annealPlacement(layout, flow, options);
  for (ModuleId id = 0; id < a.moduleCount(); ++id) {
    EXPECT_EQ(a.module(id).origin, b.module(id).origin);
  }
}

TEST(Placer, FlowFromTraceIsSymmetric) {
  const Layout layout = makePcrLayout();
  Router router(layout);
  ChipExecutor executor(layout, router);
  MixingGraph g = buildMM(pcr());
  TaskForest f(g, 8);
  const ExecutionTrace trace = executor.run(f, sched::scheduleSRS(f, 3));
  const FlowMatrix flow = flowFromTrace(trace, layout.moduleCount());
  for (std::size_t a = 0; a < flow.size(); ++a) {
    for (std::size_t b = 0; b < flow.size(); ++b) {
      EXPECT_DOUBLE_EQ(flow[a][b], flow[b][a]);
    }
  }
}

TEST(Synthesize, ScalesToManyFluids) {
  const Layout layout = synthesizeLayout(12, 4, 7);
  EXPECT_EQ(layout.byKind(ModuleKind::kReservoir).size(), 12u);
  EXPECT_EQ(layout.byKind(ModuleKind::kMixer).size(), 4u);
  EXPECT_EQ(layout.byKind(ModuleKind::kStorage).size(), 7u);
  Router router(layout);
  // Every pair of modules must be connected.
  (void)router.costMatrix();
}

TEST(Synthesize, RejectsDegenerateRequests) {
  EXPECT_THROW(synthesizeLayout(0, 3, 5), std::invalid_argument);
  EXPECT_THROW(synthesizeLayout(7, 0, 5), std::invalid_argument);
}

}  // namespace
}  // namespace dmf::chip
