#include "server/plan_cache.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "journal/journal.h"
#include "obs/scope.h"
#include "report/json.h"

namespace dmf::server {

namespace fs = std::filesystem;

namespace {

std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const char ch : text) {
    hash ^= static_cast<unsigned char>(ch);
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string hex(std::uint64_t value) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[value & 0xF];
    value >>= 4;
  }
  return out;
}

}  // namespace

PlanCache::PlanCache(Options options) : options_(std::move(options)) {
  if (options_.capacity == 0) {
    throw std::invalid_argument("PlanCache: capacity must be at least 1");
  }
  if (!options_.dir.empty()) {
    const fs::path dir(options_.dir);
    const fs::path parent = dir.parent_path();
    if (!parent.empty() && !fs::is_directory(parent)) {
      throw std::invalid_argument("PlanCache: parent directory '" +
                                  parent.string() + "' does not exist");
    }
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec || !fs::is_directory(dir)) {
      throw std::invalid_argument("PlanCache: cannot create cache dir '" +
                                  options_.dir + "'");
    }
  }
}

std::optional<std::string> PlanCache::get(const std::string& key,
                                          const char** tierOut) {
  if (tierOut != nullptr) *tierOut = "miss";
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // promote to MRU
      ++stats_.hits;
      obs::count("server.cache.mem_hit");
      if (tierOut != nullptr) *tierOut = "memory";
      return it->second->second;
    }
  }
  // Disk I/O runs outside the lock; a racing fill of the same key is
  // resolved by put()'s duplicate rule (first value wins).
  if (!options_.dir.empty()) {
    if (auto plan = loadFromDisk(key)) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.diskHits;
      }
      obs::count("server.cache.disk_hit");
      if (tierOut != nullptr) *tierOut = "disk";
      put(key, *plan);
      return plan;
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.misses;
  obs::count("server.cache.miss");
  return std::nullopt;
}

void PlanCache::put(const std::string& key, const std::string& plan) {
  bool evicted = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return;  // first value wins; a re-put only refreshes recency
    }
    lru_.emplace_front(key, plan);
    index_[key] = lru_.begin();
    if (lru_.size() > options_.capacity) {
      index_.erase(lru_.back().first);
      lru_.pop_back();
      ++stats_.evictions;
      evicted = true;
    }
    stats_.size = lru_.size();
  }
  if (evicted) obs::count("server.cache.evict");
  if (!options_.dir.empty()) storeToDisk(key, plan);
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats out = stats_;
  out.size = lru_.size();
  return out;
}

std::string PlanCache::diskPath(const std::string& key) const {
  return (fs::path(options_.dir) / (hex(fnv1a(key)) + ".plan.json")).string();
}

std::optional<std::string> PlanCache::loadFromDisk(
    const std::string& key) const {
  std::ifstream in(diskPath(key), std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    const report::Json entry = report::Json::parse(buffer.str());
    // The file name is only a hash of the key; the key stored inside the
    // file is the identity. A mismatch (hash collision, stale or corrupted
    // file) is a miss, never someone else's plan.
    if (!entry.isObject() || !entry.contains("key") ||
        entry.at("key").asString() != key) {
      return std::nullopt;
    }
    return entry.at("plan").asString();
  } catch (const std::exception&) {
    return std::nullopt;  // unreadable entries degrade to a miss
  }
}

void PlanCache::storeToDisk(const std::string& key,
                            const std::string& plan) const {
  report::Json entry = report::Json::object();
  entry.set("key", key).set("plan", plan);
  try {
    // Durable publish (tmp + fsync + rename + dir fsync): the rename alone
    // is atomic against concurrent readers, but without the fsyncs a crash
    // could leave an empty-but-renamed entry — which the server WAL replay
    // path counts on *not* happening when it treats acked plans as cached.
    journal::writeFileAtomic(diskPath(key), entry.dump());
  } catch (const std::exception&) {
    // A failed write only loses persistence, not service.
  }
}

}  // namespace dmf::server
