# Proves the perf gate actually trips: synthesizes a bench snapshot whose
# gauges sit exactly at their baselines (default 15% tolerance), then checks
#   1. the gate passes as-is (exit 0),
#   2. a synthetic 20% regression (--inflate 20) fails with exit 4,
#   3. a baseline naming a gauge the bench never emitted fails with exit 4,
#   4. an unreadable bench file is a usage error (exit 1), and
#   5. --refresh rewrites baselines so the same degraded run then passes.
#
#   cmake -DPERF_GATE=<perf_gate exe> -DWORKDIR=<scratch dir>
#         -P check_perf_gate_selftest.cmake
#
# This runs against synthetic data on purpose: the checked-in baselines in
# bench/baselines/ carry machine-variance headroom, so only an exact-at-
# baseline snapshot can demonstrate the 20%-past-15%-tolerance trip wire
# deterministically on any machine.
foreach(var PERF_GATE WORKDIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_perf_gate_selftest: -D${var}= is required")
  endif()
endforeach()
file(MAKE_DIRECTORY ${WORKDIR})

function(run_gate label expect_rc expect_pattern)
  execute_process(
    COMMAND ${PERF_GATE} ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL ${expect_rc})
    message(FATAL_ERROR "selftest '${label}': expected exit ${expect_rc}, "
            "got ${rc}\nstdout:\n${out}\nstderr:\n${err}")
  endif()
  if(NOT "${out}${err}" MATCHES "${expect_pattern}")
    message(FATAL_ERROR "selftest '${label}': output did not match "
            "\"${expect_pattern}\"\nstdout:\n${out}\nstderr:\n${err}")
  endif()
  message(STATUS "selftest '${label}': exit ${rc} as expected")
endfunction()

file(WRITE ${WORKDIR}/bench.json [[
{"gauges": {"demo.latency_nanos": 1000,
            "demo.requests_per_sec": 5000}}
]])
file(WRITE ${WORKDIR}/baseline.json [[
{"bench": "selftest",
 "entries": [{"gauge": "demo.latency_nanos", "baseline": 1000,
              "direction": "below"},
             {"gauge": "demo.requests_per_sec", "baseline": 5000,
              "direction": "above"}]}
]])

run_gate(at_baseline_passes 0 "2 gauge\\(s\\) within tolerance"
  --bench ${WORKDIR}/bench.json --baseline ${WORKDIR}/baseline.json)
run_gate(inflated_20pct_trips 4 "REGRESSION"
  --bench ${WORKDIR}/bench.json --baseline ${WORKDIR}/baseline.json
  --inflate 20)
run_gate(unreadable_bench_is_usage_error 1 "cannot read"
  --bench ${WORKDIR}/no-such-file.json --baseline ${WORKDIR}/baseline.json)

file(WRITE ${WORKDIR}/baseline_missing.json [[
{"entries": [{"gauge": "demo.never_emitted", "baseline": 7}]}
]])
run_gate(missing_gauge_trips 4 "MISSING"
  --bench ${WORKDIR}/bench.json --baseline ${WORKDIR}/baseline_missing.json)

# Refresh workflow: re-pin baselines at the degraded values, after which the
# same degraded snapshot passes the refreshed gate.
configure_file(${WORKDIR}/baseline.json ${WORKDIR}/baseline_refresh.json
               COPYONLY)
run_gate(refresh_rewrites_baselines 0 "baselines refreshed"
  --bench ${WORKDIR}/bench.json --baseline ${WORKDIR}/baseline_refresh.json
  --inflate 20 --refresh)
run_gate(refreshed_baseline_passes 0 "within tolerance"
  --bench ${WORKDIR}/bench.json --baseline ${WORKDIR}/baseline_refresh.json
  --inflate 20)
