// Ablation: scheduler choice on the mixing forest. Compares the paper's two
// engines (MMS, SRS) with the verbatim Algorithm 2 (SRS-greedy), the
// critical-path baseline (OMS/Hu) and a genetic-algorithm scheduler (after
// the paper's reference [22]) over a corpus sample at D = 32.
//
// Design questions answered (DESIGN.md section 5):
//  - does SRS's just-in-time + capped search beat the verbatim two-queue
//    pseudo-code on storage? (yes, consistently)
//  - does stochastic search (GA) buy anything over Hu's algorithm on these
//    forests? (time: no — Hu is optimal on the tree-like structure; storage:
//    occasionally one unit)
#include <chrono>
#include <iostream>

#include "engine/mdst.h"
#include "report/table.h"
#include "sched/ga_scheduler.h"
#include "sched/schedulers.h"
#include "workload/ratio_corpus.h"

#include "bench_obs.h"

int main() {
  const dmf::bench::BenchSession benchObs("ablation_schedulers");
  using namespace dmf;
  using Clock = std::chrono::steady_clock;

  const auto& corpus = workload::evaluationCorpus();
  constexpr std::size_t kStride = 101;  // ~60 ratios
  std::cout << "# Ablation — scheduler choice at D = 32 over every "
            << kStride << "th corpus ratio\n\n";

  struct Stats {
    double tc = 0;
    double q = 0;
    double micros = 0;
  };
  const char* names[5] = {"MMS", "SRS", "SRS-greedy (verbatim Alg.2)",
                          "OMS (Hu)", "GA [22]"};
  Stats stats[5];
  std::size_t count = 0;

  for (std::size_t i = 0; i < corpus.size(); i += kStride) {
    engine::MdstEngine engine(corpus[i]);
    const forest::TaskForest forest =
        engine.buildForest(mixgraph::Algorithm::MM, 32);
    const unsigned mixers = engine.defaultMixers();

    sched::GaOptions gaOptions;
    gaOptions.population = 16;
    gaOptions.generations = 25;

    for (int s = 0; s < 5; ++s) {
      const auto start = Clock::now();
      const sched::Schedule schedule =
          s == 0   ? sched::scheduleMMS(forest, mixers)
          : s == 1 ? sched::scheduleSRS(forest, mixers)
          : s == 2 ? sched::scheduleSRSGreedy(forest, mixers)
          : s == 3 ? sched::scheduleOMS(forest, mixers)
                   : sched::scheduleGA(forest, mixers, gaOptions);
      const auto stop = Clock::now();
      sched::validateOrThrow(forest, schedule);
      stats[s].tc += schedule.completionTime;
      stats[s].q += sched::countStorage(forest, schedule);
      stats[s].micros += std::chrono::duration<double, std::micro>(
                             stop - start)
                             .count();
    }
    ++count;
  }

  report::Table table({"scheduler", "avg Tc", "avg q", "avg runtime (us)"});
  for (int s = 0; s < 5; ++s) {
    const auto n = static_cast<double>(count);
    table.addRow({names[s], report::fixed(stats[s].tc / n, 2),
                  report::fixed(stats[s].q / n, 2),
                  report::fixed(stats[s].micros / n, 1)});
  }
  std::cout << table.render() << "\n(" << count << " forests; every schedule"
            << " validated for precedence and mixer capacity)\n";
  return 0;
}
