#include "engine/mdst.h"

#include <algorithm>
#include <map>
#include <optional>
#include <stdexcept>

#include "obs/scope.h"

namespace dmf::engine {

using forest::TaskForest;
using mixgraph::Algorithm;
using mixgraph::MixingGraph;

std::string_view schemeName(Scheme scheme) {
  switch (scheme) {
    case Scheme::kMMS:
      return "MMS";
    case Scheme::kSRS:
      return "SRS";
    case Scheme::kOMS:
      return "OMS";
  }
  throw std::invalid_argument("schemeName: unknown scheme");
}

namespace {

// Mixer-bank utilization of a finished schedule, overall and per forest
// level, recorded into the active session. Runs only when observability is
// on; purely derived from the schedule, so it cannot perturb planning.
void recordScheduleObservability(const TaskForest& forest,
                                 const sched::Schedule& s) {
  obs::MetricsRegistry* m = obs::metrics();
  if (m == nullptr || s.completionTime == 0 || s.mixerCount == 0) return;

  const std::uint64_t capacity =
      std::uint64_t{s.completionTime} * s.mixerCount;
  const std::uint64_t utilizationPct = forest.taskCount() * 100 / capacity;
  m->gauge("sched.utilization_pct").set(utilizationPct);
  m->histogram("sched.utilization_pct_hist",
               {10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
      .observe(utilizationPct);

  // Per-level utilization: tasks of one forest level over the mixer-cycles
  // spanned by that level's busy window (Fig. 3's "how full is each wave").
  // Levels are dense small integers, so a flat vector indexed by level
  // replaces the std::map this used — same ascending observation order.
  struct LevelSpan {
    std::uint64_t tasks = 0;
    unsigned first = 0;
    unsigned last = 0;
  };
  const std::vector<unsigned>& taskLevels = forest.taskLevels();
  std::vector<LevelSpan> levels;
  for (forest::TaskId id = 0; id < forest.taskCount(); ++id) {
    const unsigned cycle = s.cycles[id];
    const unsigned level = taskLevels[id];
    if (levels.size() <= level) levels.resize(level + 1);
    LevelSpan& span = levels[level];
    if (span.tasks == 0) {
      span.first = cycle;
      span.last = cycle;
    }
    span.tasks += 1;
    span.first = std::min(span.first, cycle);
    span.last = std::max(span.last, cycle);
  }
  obs::Histogram& perLevel = m->histogram(
      "sched.level_utilization_pct", {10, 20, 30, 40, 50, 60, 70, 80, 90, 100});
  for (const LevelSpan& span : levels) {
    if (span.tasks == 0) continue;
    const std::uint64_t window =
        std::uint64_t{span.last - span.first + 1} * s.mixerCount;
    perLevel.observe(span.tasks * 100 / window);
  }
  m->counter("sched.schedules").add(1);
  m->counter("sched.scheduled_tasks").add(forest.taskCount());
}

}  // namespace

sched::Schedule schedule(const TaskForest& forest, Scheme scheme,
                         unsigned mixers) {
  const sched::Schedule s = [&] {
    switch (scheme) {
      case Scheme::kMMS: {
        const obs::Span span("sched.MMS", "sched");
        return sched::scheduleMMS(forest, mixers);
      }
      case Scheme::kSRS: {
        const obs::Span span("sched.SRS", "sched");
        return sched::scheduleSRS(forest, mixers);
      }
      case Scheme::kOMS: {
        const obs::Span span("sched.OMS", "sched");
        return sched::scheduleOMS(forest, mixers);
      }
    }
    throw std::invalid_argument("schedule: unknown scheme");
  }();
  recordScheduleObservability(forest, s);
  return s;
}

MdstEngine::MdstEngine(Ratio ratio) : ratio_(std::move(ratio)), graphs_(4) {}

const MixingGraph& MdstEngine::baseGraph(Algorithm algorithm) const {
  const std::lock_guard<std::mutex> lock(lazyMutex_);
  auto& slot = graphs_.at(static_cast<std::size_t>(algorithm));
  if (!slot.has_value()) {
    slot.emplace(mixgraph::buildGraph(ratio_, algorithm));
  }
  // The reference stays valid after unlock: graphs_ never resizes and an
  // engaged slot is never re-assigned.
  return *slot;
}

unsigned MdstEngine::defaultMixers() const {
  const MixingGraph& base = baseGraph(Algorithm::MM);
  const std::lock_guard<std::mutex> lock(lazyMutex_);
  if (!defaultMixers_.has_value()) {
    const TaskForest basePass(base, 2);
    defaultMixers_ = sched::minimumMixers(basePass);
  }
  return *defaultMixers_;
}

TaskForest MdstEngine::buildForest(Algorithm algorithm,
                                   std::uint64_t demand) const {
  return TaskForest(baseGraph(algorithm), demand);
}

MdstResult MdstEngine::run(const MdstRequest& request) const {
  const unsigned mixers =
      request.mixers == 0 ? defaultMixers() : request.mixers;
  const TaskForest forest = buildForest(request.algorithm, request.demand);
  const sched::Schedule s = schedule(forest, request.scheme, mixers);

  MdstResult result;
  result.completionTime = s.completionTime;
  result.storageUnits = sched::countStorage(forest, s);
  result.mixSplits = forest.stats().mixSplits;
  result.waste = forest.stats().waste;
  result.inputDroplets = forest.stats().inputTotal;
  result.inputPerFluid = forest.stats().inputPerFluid;
  result.componentTrees = forest.stats().componentTrees;
  result.mixers = mixers;
  return result;
}

}  // namespace dmf::engine
