// The exact composition of a droplet: per-fluid concentration factors over a
// common dyadic denominator.
#pragma once

#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

#include "dmf/fraction.h"
#include "dmf/ratio.h"

namespace dmf {

/// The composition of one droplet as a vector of per-fluid numerators over a
/// common denominator 2^exponent.
///
/// Invariants: numerators().size() == fluidCount, sum(numerators) ==
/// 2^exponent (a droplet is always 100% of *something*), and the value is
/// canonical — exponent is minimal (some numerator is odd, or exponent == 0).
///
/// Canonical form makes equality structural, so two droplets with the same
/// composition reached through different mix sequences compare (and hash)
/// equal. That equivalence is exactly what the MTCS common-subtree sharing
/// builder relies on.
class MixtureValue {
 public:
  /// Composition with the given numerators over 2^exponent; canonicalizes.
  /// Throws std::invalid_argument on an empty vector, exponent out of range,
  /// or numerators that do not sum to 2^exponent.
  MixtureValue(std::vector<std::uint64_t> numerators, unsigned exponent);

  /// A droplet of pure input fluid `fluid` (CF = 100%) in an N-fluid space.
  /// Throws std::invalid_argument if fluid >= fluidCount or fluidCount == 0.
  static MixtureValue pure(std::size_t fluid, std::size_t fluidCount);

  /// The target composition of a ratio: parts over 2^accuracy.
  static MixtureValue target(const Ratio& ratio);

  /// The (1:1) mix of two droplets from the same fluid space.
  /// Throws std::invalid_argument if fluid spaces differ or if `a == b`
  /// (mixing two identical droplets is a no-op the mix model forbids).
  static MixtureValue mix(const MixtureValue& a, const MixtureValue& b);

  /// Number of fluids in the composition space.
  [[nodiscard]] std::size_t fluidCount() const { return num_.size(); }
  /// Canonical numerators.
  [[nodiscard]] const std::vector<std::uint64_t>& numerators() const {
    return num_;
  }
  /// Canonical denominator exponent.
  [[nodiscard]] unsigned exponent() const { return exp_; }

  /// Concentration factor of fluid i as an exact dyadic fraction.
  [[nodiscard]] DyadicFraction concentration(std::size_t i) const;

  /// True iff the droplet is 100% of a single fluid.
  [[nodiscard]] bool isPure() const;
  /// For a pure droplet, the fluid index. Throws std::logic_error otherwise.
  [[nodiscard]] std::size_t pureFluid() const;

  /// Stable hash of the canonical form (for unordered containers).
  [[nodiscard]] std::size_t hash() const;

  /// "{2:1:1:1:1:1:9}/2^4" or "pure(x3)".
  [[nodiscard]] std::string toString() const;

  friend bool operator==(const MixtureValue&, const MixtureValue&) = default;

 private:
  std::vector<std::uint64_t> num_;
  unsigned exp_ = 0;
};

/// Hash functor so MixtureValue can key unordered containers.
struct MixtureValueHash {
  std::size_t operator()(const MixtureValue& v) const { return v.hash(); }
};

}  // namespace dmf
