file(REMOVE_RECURSE
  "CMakeFiles/dmf_report.dir/chart.cpp.o"
  "CMakeFiles/dmf_report.dir/chart.cpp.o.d"
  "CMakeFiles/dmf_report.dir/json.cpp.o"
  "CMakeFiles/dmf_report.dir/json.cpp.o.d"
  "CMakeFiles/dmf_report.dir/table.cpp.o"
  "CMakeFiles/dmf_report.dir/table.cpp.o.d"
  "libdmf_report.a"
  "libdmf_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmf_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
