// Two-tier plan cache: an in-memory LRU of serialized plans plus an
// optional on-disk persistent tier (DESIGN.md §13).
//
// Values are the exact response bytes (the dumped plan JSON), so a cache
// hit is byte-identical to the cold computation that filled it — including
// across a daemon restart through the disk tier.
//
// Keys are canonical request strings (server/canonical.h) and are always
// compared in full: the disk tier addresses files by a 64-bit FNV-1a of the
// key but stores the key inside the file and verifies it on load, so a hash
// collision degrades to a miss, never to the wrong plan (the same rule the
// GA fitness memo follows).
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace dmf::server {

class PlanCache {
 public:
  struct Options {
    /// In-memory entries kept (least-recently-used evicted first).
    std::size_t capacity = 256;
    /// Persistent tier directory; empty = memory only. The directory itself
    /// is created on demand, but its parent must exist.
    std::string dir;
  };

  /// Point-in-time counters (monotonic; reads are cheap).
  struct Stats {
    std::uint64_t hits = 0;      ///< memory-tier hits
    std::uint64_t diskHits = 0;  ///< disk-tier hits (promoted to memory)
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t size = 0;  ///< current memory-tier entries
  };

  /// Throws std::invalid_argument when the persistent tier cannot be set up
  /// (missing parent directory) or capacity is zero.
  explicit PlanCache(Options options);

  /// The cached plan bytes for exactly this key, or nullopt. Checks memory
  /// first, then the disk tier (a disk hit is promoted into memory). Emits
  /// server.cache.mem_hit / server.cache.disk_hit / server.cache.miss
  /// counters. When `tierOut` is non-null it receives the tier consulted:
  /// a static "memory" / "disk" / "miss" string (for span annotation).
  [[nodiscard]] std::optional<std::string> get(const std::string& key,
                                               const char** tierOut = nullptr);

  /// Stores plan bytes under a key (memory + disk tier when configured).
  /// A duplicate put keeps the first value — plans are pure functions of
  /// the canonical key, so they cannot legitimately differ.
  void put(const std::string& key, const std::string& plan);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t capacity() const { return options_.capacity; }

 private:
  [[nodiscard]] std::optional<std::string> loadFromDisk(
      const std::string& key) const;
  void storeToDisk(const std::string& key, const std::string& plan) const;
  [[nodiscard]] std::string diskPath(const std::string& key) const;

  Options options_;
  mutable std::mutex mutex_;
  /// Front = most recently used. Entries are (key, plan bytes).
  std::list<std::pair<std::string, std::string>> lru_;
  std::unordered_map<std::string,
                     std::list<std::pair<std::string, std::string>>::iterator>
      index_;
  Stats stats_;
};

}  // namespace dmf::server
