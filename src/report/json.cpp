#include "report/json.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace dmf::report {

std::string jsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char ch : text) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buffer;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

Json Json::string(std::string value) {
  Json j(Kind::kString);
  j.text_ = std::move(value);
  return j;
}

Json Json::number(double value) {
  if (!std::isfinite(value)) {
    throw std::invalid_argument("Json::number: non-finite value");
  }
  Json j(Kind::kNumber);
  j.num_ = value;
  return j;
}

Json Json::number(std::uint64_t value) {
  Json j(Kind::kUnsigned);
  j.unsigned_ = value;
  return j;
}

Json Json::boolean(bool value) {
  Json j(Kind::kBool);
  j.bool_ = value;
  return j;
}

Json& Json::set(const std::string& key, Json value) {
  if (kind_ != Kind::kObject) {
    throw std::logic_error("Json::set: not an object");
  }
  fields_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::set(const std::string& key, std::uint64_t value) {
  return set(key, Json::number(value));
}

Json& Json::set(const std::string& key, double value) {
  return set(key, Json::number(value));
}

Json& Json::set(const std::string& key, std::string value) {
  return set(key, Json::string(std::move(value)));
}

Json& Json::push(Json value) {
  if (kind_ != Kind::kArray) {
    throw std::logic_error("Json::push: not an array");
  }
  items_.push_back(std::move(value));
  return *this;
}

std::string Json::dump(unsigned indent) const {
  std::string out;
  dumpTo(out, indent, 0);
  if (indent > 0) out += '\n';
  return out;
}

void Json::dumpTo(std::string& out, unsigned indent, unsigned depth) const {
  const std::string pad =
      indent == 0 ? "" : "\n" + std::string((depth + 1) * indent, ' ');
  const std::string padClose =
      indent == 0 ? "" : "\n" + std::string(depth * indent, ' ');
  switch (kind_) {
    case Kind::kObject: {
      out += '{';
      for (std::size_t i = 0; i < fields_.size(); ++i) {
        if (i != 0) out += ',';
        out += pad + '"' + jsonEscape(fields_[i].first) + "\":";
        if (indent > 0) out += ' ';
        fields_[i].second.dumpTo(out, indent, depth + 1);
      }
      if (!fields_.empty()) out += padClose;
      out += '}';
      break;
    }
    case Kind::kArray: {
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i != 0) out += ',';
        out += pad;
        items_[i].dumpTo(out, indent, depth + 1);
      }
      if (!items_.empty()) out += padClose;
      out += ']';
      break;
    }
    case Kind::kString:
      out += '"' + jsonEscape(text_) + '"';
      break;
    case Kind::kNumber: {
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%.10g", num_);
      out += buffer;
      break;
    }
    case Kind::kUnsigned:
      out += std::to_string(unsigned_);
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
  }
}

}  // namespace dmf::report
