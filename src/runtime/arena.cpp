#include "runtime/arena.h"

#include <algorithm>

#include "obs/scope.h"

namespace dmf::runtime {

Arena::Arena(std::size_t firstChunkBytes)
    : firstChunkBytes_(std::max<std::size_t>(firstChunkBytes, 256)) {}

void Arena::addChunk(std::size_t atLeast) {
  // Geometric growth (doubling, capped) keeps the chunk count logarithmic
  // in the high-water mark while bounding per-chunk waste.
  std::size_t size = chunks_.empty()
                         ? firstChunkBytes_
                         : std::min(chunks_.back().size * 2, kMaxChunk);
  size = std::max(size, atLeast);
  Chunk chunk;
  chunk.data = std::make_unique<std::byte[]>(size);
  chunk.size = size;
  chunks_.push_back(std::move(chunk));
  bytesReserved_ += size;
  ++chunkAllocations_;
  obs::count("runtime.arena.chunks", 1);
  obs::count("runtime.arena.bytes", size);
}

void* Arena::allocateBytes(std::size_t bytes, std::size_t align) {
  if (bytes == 0) bytes = 1;
  for (;;) {
    if (current_ < chunks_.size()) {
      Chunk& chunk = chunks_[current_];
      const std::size_t aligned = (used_ + align - 1) & ~(align - 1);
      if (aligned + bytes <= chunk.size) {
        used_ = aligned + bytes;
        return chunk.data.get() + aligned;
      }
      // Doesn't fit here: move on. Retained chunks after current_ are
      // revisited before any fresh allocation.
      ++current_;
      used_ = 0;
      continue;
    }
    addChunk(bytes + align);
  }
}

Arena& scratchArena() {
  thread_local Arena arena;
  return arena;
}

}  // namespace dmf::runtime
