#include "sched/gantt.h"

#include <algorithm>
#include <vector>

namespace dmf::sched {

using forest::TaskForest;
using forest::TaskId;

namespace {

std::string pad(std::string text, std::size_t width) {
  if (text.size() < width) {
    text.insert(0, width - text.size(), ' ');
  }
  return text;
}

}  // namespace

std::string renderGantt(const TaskForest& forest, const Schedule& s) {
  const unsigned tc = s.completionTime;
  std::vector<std::vector<std::string>> cells(
      s.mixerCount, std::vector<std::string>(tc + 1));
  std::size_t width = 5;
  for (TaskId id = 0; id < forest.taskCount(); ++id) {
    std::string label = forest.taskLabel(id);
    width = std::max(width, label.size() + 1);
    cells[s.mixers[id]][s.cycles[id]] = std::move(label);
  }

  const std::vector<unsigned> storage = storageProfile(forest, s);
  std::vector<unsigned> emitted(tc + 1, 0);
  for (unsigned cycle : emissionCycles(forest, s)) {
    ++emitted[cycle];
  }

  std::string out = pad("t", width);
  for (unsigned t = 1; t <= tc; ++t) {
    out += pad(std::to_string(t), width);
  }
  out += '\n';
  for (unsigned m = 0; m < s.mixerCount; ++m) {
    out += pad("M" + std::to_string(m + 1), width);
    for (unsigned t = 1; t <= tc; ++t) {
      out += pad(cells[m][t].empty() ? "." : cells[m][t], width);
    }
    out += '\n';
  }
  out += pad("store", width);
  for (unsigned t = 1; t <= tc; ++t) {
    out += pad(std::to_string(storage[t]), width);
  }
  out += '\n';
  out += pad("emit", width);
  for (unsigned t = 1; t <= tc; ++t) {
    out += pad(emitted[t] == 0 ? "." : std::to_string(emitted[t]), width);
  }
  out += '\n';
  return out;
}

}  // namespace dmf::sched
