#include "engine/pass_cache.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "runtime/thread_pool.h"

namespace dmf::engine {
namespace {

Ratio pcr() { return Ratio({2, 1, 1, 1, 1, 1, 9}); }

std::vector<std::uint64_t> ladderTo(std::uint64_t top) {
  std::vector<std::uint64_t> demands;
  for (std::uint64_t d = 1; d <= top; ++d) demands.push_back(d);
  return demands;
}

void expectSamePass(const StreamingPass& a, const StreamingPass& b,
                    std::uint64_t demand) {
  EXPECT_EQ(a.demand, b.demand) << "demand " << demand;
  EXPECT_EQ(a.cycles, b.cycles) << "demand " << demand;
  EXPECT_EQ(a.storageUnits, b.storageUnits) << "demand " << demand;
  EXPECT_EQ(a.waste, b.waste) << "demand " << demand;
  EXPECT_EQ(a.inputDroplets, b.inputDroplets) << "demand " << demand;
  EXPECT_EQ(a.mixSplits, b.mixSplits) << "demand " << demand;
}

TEST(Ladder, BatchedMatchesScalar) {
  const MdstEngine engine(pcr());
  const std::vector<std::uint64_t> demands = ladderTo(32);
  PassCache cache;
  const std::vector<StreamingPass> batched = cache.evaluateLadder(
      engine, mixgraph::Algorithm::MM, Scheme::kSRS, 3, demands);
  ASSERT_EQ(batched.size(), demands.size());
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const StreamingPass scalar = evaluatePass(
        engine, mixgraph::Algorithm::MM, Scheme::kSRS, 3, demands[i]);
    expectSamePass(batched[i], scalar, demands[i]);
  }
}

TEST(Ladder, BatchedMatchesScalarWithPool) {
  const MdstEngine engine(pcr());
  const std::vector<std::uint64_t> demands = ladderTo(24);
  runtime::ThreadPool pool(4);
  PassCache pooled;
  const std::vector<StreamingPass> batched = pooled.evaluateLadder(
      engine, mixgraph::Algorithm::MM, Scheme::kSRS, 3, demands, &pool);
  ASSERT_EQ(batched.size(), demands.size());
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const StreamingPass scalar = evaluatePass(
        engine, mixgraph::Algorithm::MM, Scheme::kSRS, 3, demands[i]);
    expectSamePass(batched[i], scalar, demands[i]);
  }
}

TEST(Ladder, HitsResolveFromCacheWithoutRecomputation) {
  const MdstEngine engine(pcr());
  PassCache cache;
  // Pre-populate the odd demands through the scalar path.
  for (std::uint64_t d = 1; d <= 16; d += 2) {
    (void)cache.evaluate(engine, mixgraph::Algorithm::MM, Scheme::kSRS, 3, d);
  }
  const PassCacheStats before = cache.stats();
  EXPECT_EQ(before.misses, 8u);
  const std::vector<std::uint64_t> demands = ladderTo(16);
  const std::vector<StreamingPass> batched = cache.evaluateLadder(
      engine, mixgraph::Algorithm::MM, Scheme::kSRS, 3, demands);
  const PassCacheStats after = cache.stats();
  EXPECT_EQ(after.hits - before.hits, 8u);    // the pre-populated odds
  EXPECT_EQ(after.misses - before.misses, 8u);  // the fresh evens
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const StreamingPass scalar = evaluatePass(
        engine, mixgraph::Algorithm::MM, Scheme::kSRS, 3, demands[i]);
    expectSamePass(batched[i], scalar, demands[i]);
  }
  // A second sweep is all hits.
  (void)cache.evaluateLadder(engine, mixgraph::Algorithm::MM, Scheme::kSRS, 3,
                             demands);
  EXPECT_EQ(cache.stats().misses, after.misses);
}

TEST(Ladder, EvaluatePassLadderWrapperDelegates) {
  const MdstEngine engine(pcr());
  PassCache cache;
  const std::vector<std::uint64_t> demands = ladderTo(8);
  const std::vector<StreamingPass> viaFree = evaluatePassLadder(
      engine, mixgraph::Algorithm::MM, Scheme::kSRS, 3, demands, cache);
  EXPECT_EQ(cache.size(), demands.size());
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const auto hit =
        cache.lookup({mixgraph::Algorithm::MM, Scheme::kSRS, 3, demands[i]});
    ASSERT_TRUE(hit.has_value());
    expectSamePass(viaFree[i], *hit, demands[i]);
  }
}

TEST(Ladder, PassKeyHashDistinctOverSweepGrid) {
  // The exact key grid a planner sweep touches: every (algorithm, scheme,
  // mixers, demand) combination must hash distinctly — 64-bit collisions on
  // a few thousand structured keys would mean the mix is broken.
  constexpr mixgraph::Algorithm kAlgos[] = {
      mixgraph::Algorithm::MM, mixgraph::Algorithm::RMA,
      mixgraph::Algorithm::MTCS, mixgraph::Algorithm::RSM};
  constexpr Scheme kSchemes[] = {Scheme::kMMS, Scheme::kSRS, Scheme::kOMS};
  const PassKeyHash hash;
  std::set<std::size_t> seen;
  std::size_t keys = 0;
  for (const mixgraph::Algorithm algorithm : kAlgos) {
    for (const Scheme scheme : kSchemes) {
      for (unsigned mixers = 1; mixers <= 4; ++mixers) {
        for (std::uint64_t demand = 1; demand <= 64; ++demand) {
          seen.insert(hash(PassKey{algorithm, scheme, mixers, demand}));
          ++keys;
        }
      }
    }
  }
  EXPECT_EQ(seen.size(), keys);
}

TEST(Ladder, PassKeyHashSpreadsConsecutiveDemands) {
  // Demand sweeps insert consecutive integers — the access pattern that
  // collided modulo small bucket counts before the per-field avalanche.
  // A well-mixed hash fills ~63% of N buckets with N random keys; the old
  // field-XOR hash landed consecutive demands in clustered buckets.
  const PassKeyHash hash;
  constexpr std::size_t kBuckets = 4096;
  std::set<std::size_t> buckets;
  for (std::uint64_t demand = 1; demand <= kBuckets; ++demand) {
    buckets.insert(
        hash(PassKey{mixgraph::Algorithm::MM, Scheme::kSRS, 4, demand}) %
        kBuckets);
  }
  EXPECT_GE(buckets.size(), kBuckets * 55 / 100);
  EXPECT_LE(buckets.size(), kBuckets * 72 / 100);
}

}  // namespace
}  // namespace dmf::engine
