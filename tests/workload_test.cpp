#include "workload/ratio_corpus.h"
#include "workload/random_ratios.h"

#include <gtest/gtest.h>

#include <iostream>
#include <set>
#include <stdexcept>

namespace dmf::workload {
namespace {

TEST(PartitionCorpus, SmallCaseIsExhaustive) {
  // Partitions of 8 into 2..3 parts: (7,1)(6,2)(5,3)(4,4) and
  // (6,1,1)(5,2,1)(4,3,1)(4,2,2)(3,3,2).
  const auto corpus = partitionCorpus(8, 2, 3);
  EXPECT_EQ(corpus.size(), 9u);
  std::set<std::string> seen;
  for (const Ratio& r : corpus) {
    EXPECT_TRUE(seen.insert(r.toString()).second) << "duplicate " << r.toString();
    EXPECT_EQ(r.sum(), 8u);
  }
}

TEST(PartitionCorpus, PartsAreNonIncreasing) {
  for (const Ratio& r : partitionCorpus(16, 2, 5)) {
    for (std::size_t i = 1; i < r.fluidCount(); ++i) {
      EXPECT_LE(r.part(i), r.part(i - 1)) << r.toString();
    }
  }
}

TEST(PartitionCorpus, MatchesCountingRecurrence) {
  std::uint64_t expected = 0;
  for (std::size_t k = 2; k <= 5; ++k) expected += countPartitions(16, k);
  EXPECT_EQ(partitionCorpus(16, 2, 5).size(), expected);
}

TEST(PartitionCorpus, EvaluationCorpusSizeIsStable) {
  // The paper reports 6058 synthetic ratios of 2..12 fluids at L = 32; the
  // exhaustive partition corpus is our deterministic stand-in. Record its
  // size so every averaged bench is reproducible.
  const auto& corpus = evaluationCorpus();
  std::uint64_t expected = 0;
  for (std::size_t k = 2; k <= 12; ++k) expected += countPartitions(32, k);
  EXPECT_EQ(corpus.size(), expected);
  std::cout << "[diag] evaluation corpus size = " << corpus.size() << "\n";
  EXPECT_GT(corpus.size(), 3000u);
  EXPECT_LT(corpus.size(), 9000u);
}

TEST(PartitionCorpus, RejectsBadArguments) {
  EXPECT_THROW(partitionCorpus(12, 2, 4), std::invalid_argument);  // not 2^k
  EXPECT_THROW(partitionCorpus(16, 1, 4), std::invalid_argument);
  EXPECT_THROW(partitionCorpus(16, 5, 4), std::invalid_argument);
  EXPECT_THROW(partitionCorpus(16, 2, 17), std::invalid_argument);
}

TEST(CountPartitions, KnownValues) {
  EXPECT_EQ(countPartitions(8, 2), 4u);
  EXPECT_EQ(countPartitions(8, 3), 5u);
  EXPECT_EQ(countPartitions(8, 8), 1u);
  EXPECT_EQ(countPartitions(8, 9), 0u);
  EXPECT_EQ(countPartitions(8, 0), 0u);
}

TEST(RandomRatios, DeterministicForSeed) {
  RandomRatioGenerator a(32, 5, 42);
  RandomRatioGenerator b(32, 5, 42);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(RandomRatios, ProducesValidRatios) {
  RandomRatioGenerator gen(64, 7, 1);
  for (int i = 0; i < 100; ++i) {
    const Ratio r = gen.next();
    EXPECT_EQ(r.sum(), 64u);
    EXPECT_EQ(r.fluidCount(), 7u);
  }
}

TEST(RandomRatios, RejectsBadArguments) {
  EXPECT_THROW(RandomRatioGenerator(12, 3, 0), std::invalid_argument);
  EXPECT_THROW(RandomRatioGenerator(16, 1, 0), std::invalid_argument);
  EXPECT_THROW(RandomRatioGenerator(16, 17, 0), std::invalid_argument);
}

}  // namespace
}  // namespace dmf::workload
