#include "obs/prometheus.h"

#include <cstdio>
#include <stdexcept>
#include <vector>

namespace dmf::obs {

namespace {

/// Prometheus metric names match [a-zA-Z_:][a-zA-Z0-9_:]*; instrument names
/// here are dotted ("server.cache.mem_hit"), so map every other byte to '_'
/// and anchor under the exporter prefix.
std::string sanitize(const std::string& name) {
  std::string out = "dmf_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string formatDouble(double value) {
  char text[64];
  std::snprintf(text, sizeof(text), "%.17g", value);
  return text;
}

void renderScalarSection(const report::Json& section, const char* type,
                         const std::string& suffix, std::string& out) {
  for (const std::string& name : section.keys()) {
    const std::string metric = sanitize(name) + suffix;
    out += "# TYPE " + metric + " " + type + "\n";
    out += metric + " " + std::to_string(section.at(name).asUint()) + "\n";
  }
}

}  // namespace

std::string prometheusText(const report::Json& snapshot) {
  if (!snapshot.isObject() || !snapshot.contains("counters") ||
      !snapshot.contains("gauges") || !snapshot.contains("histograms")) {
    throw std::invalid_argument(
        "prometheusText: expected a metrics snapshot object with "
        "counters/gauges/histograms sections");
  }

  std::string out;
  renderScalarSection(snapshot.at("counters"), "counter", "_total", out);
  renderScalarSection(snapshot.at("gauges"), "gauge", "", out);

  const report::Json& histograms = snapshot.at("histograms");
  for (const std::string& name : histograms.keys()) {
    const report::Json& h = histograms.at(name);
    const report::Json& boundsJson = h.at("bounds");
    const report::Json& countsJson = h.at("counts");
    std::vector<std::uint64_t> bounds(boundsJson.size());
    std::vector<std::uint64_t> counts(countsJson.size());
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      bounds[i] = boundsJson.at(i).asUint();
    }
    for (std::size_t i = 0; i < counts.size(); ++i) {
      counts[i] = countsJson.at(i).asUint();
    }
    if (counts.size() != bounds.size() + 1) {
      throw std::invalid_argument(
          "prometheusText: histogram '" + name +
          "' counts must have bounds.size() + 1 entries");
    }

    const std::string metric = sanitize(name);
    out += "# TYPE " + metric + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      cumulative += counts[i];
      out += metric + "_bucket{le=\"" + std::to_string(bounds[i]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    cumulative += counts.back();
    out += metric + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) + "\n";
    out += metric + "_sum " + std::to_string(h.at("sum").asUint()) + "\n";
    out += metric + "_count " + std::to_string(h.at("count").asUint()) + "\n";

    // Derived quantile gauges: scrape-friendly estimates so dashboards get
    // p50/p95/p99 without PromQL histogram_quantile over raw buckets.
    static constexpr struct {
      const char* suffix;
      double q;
    } kQuantiles[] = {{"_p50", 0.50}, {"_p95", 0.95}, {"_p99", 0.99}};
    for (const auto& [suffix, q] : kQuantiles) {
      out += "# TYPE " + metric + suffix + " gauge\n";
      out += metric + suffix + " " +
             formatDouble(histogramQuantile(bounds, counts, q)) + "\n";
    }
  }
  return out;
}

std::string prometheusText(const MetricsRegistry& registry) {
  return prometheusText(registry.snapshot());
}

}  // namespace dmf::obs
