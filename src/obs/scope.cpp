#include "obs/scope.h"

#include <stdexcept>

namespace dmf::obs {

namespace detail {
std::atomic<Session*> g_session{nullptr};

SpanContext& currentContextSlot() noexcept {
  thread_local SpanContext tContext;
  return tContext;
}
}  // namespace detail

Scope::Scope(Session& session) {
  Session* expected = nullptr;
  if (!detail::g_session.compare_exchange_strong(expected, &session,
                                                 std::memory_order_acq_rel)) {
    throw std::logic_error("obs::Scope: a session is already installed");
  }
}

Scope::~Scope() {
  detail::g_session.store(nullptr, std::memory_order_release);
}

}  // namespace dmf::obs
