file(REMOVE_RECURSE
  "CMakeFiles/dmf_forest.dir/task_forest.cpp.o"
  "CMakeFiles/dmf_forest.dir/task_forest.cpp.o.d"
  "libdmf_forest.a"
  "libdmf_forest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmf_forest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
