#include "sched/schedule.h"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "obs/scope.h"

namespace dmf::sched {

using forest::DropletFate;
using forest::kNoTask;
using forest::Task;
using forest::TaskForest;
using forest::TaskId;

void validateOrThrow(const TaskForest& forest, const Schedule& s) {
  if (s.assignments.size() != forest.taskCount()) {
    throw std::logic_error("Schedule: assignment count mismatch");
  }
  if (s.mixerCount == 0 && forest.taskCount() > 0) {
    throw std::logic_error("Schedule: zero mixers");
  }
  unsigned last = 0;
  std::set<std::pair<unsigned, unsigned>> slots;
  for (TaskId id = 0; id < forest.taskCount(); ++id) {
    const Assignment& a = s.assignments[id];
    if (a.cycle == 0) {
      throw std::logic_error("Schedule: task " + std::to_string(id) +
                             " unscheduled");
    }
    if (a.mixer >= s.mixerCount) {
      throw std::logic_error("Schedule: mixer index out of range");
    }
    if (!slots.insert({a.cycle, a.mixer}).second) {
      throw std::logic_error("Schedule: two mix-splits share cycle " +
                             std::to_string(a.cycle) + " mixer " +
                             std::to_string(a.mixer));
    }
    const Task& t = forest.task(id);
    for (TaskId dep : {t.depLeft, t.depRight}) {
      if (dep != kNoTask && s.assignments[dep].cycle >= a.cycle) {
        throw std::logic_error("Schedule: precedence violated at task " +
                               std::to_string(id));
      }
    }
    last = std::max(last, a.cycle);
  }
  if (last != s.completionTime) {
    throw std::logic_error("Schedule: completionTime " +
                           std::to_string(s.completionTime) +
                           " != last busy cycle " + std::to_string(last));
  }
}

std::vector<unsigned> storageProfile(const TaskForest& forest,
                                     const Schedule& s) {
  std::vector<unsigned> storage(s.completionTime + 1, 0);
  for (TaskId id = 0; id < forest.taskCount(); ++id) {
    const unsigned produced = s.assignments[id].cycle;
    for (const auto& drop : forest.task(id).out) {
      if (drop.fate != DropletFate::kConsumed) continue;
      const unsigned consumed = s.assignments[drop.consumer].cycle;
      for (unsigned i = produced + 1; i < consumed; ++i) {
        ++storage[i];
      }
    }
  }
  return storage;
}

unsigned countStorage(const TaskForest& forest, const Schedule& s) {
  const std::vector<unsigned> profile = storageProfile(forest, s);
  const unsigned peak =
      profile.empty() ? 0
                      : *std::max_element(profile.begin(), profile.end());
  obs::gaugeMax("sched.storage_high_water", peak);
  return peak;
}

std::vector<unsigned> emissionCycles(const TaskForest& forest,
                                     const Schedule& s) {
  std::vector<unsigned> cycles;
  for (TaskId id = 0; id < forest.taskCount(); ++id) {
    for (const auto& drop : forest.task(id).out) {
      if (drop.fate == DropletFate::kTarget) {
        cycles.push_back(s.assignments[id].cycle);
      }
    }
  }
  std::sort(cycles.begin(), cycles.end());
  return cycles;
}

}  // namespace dmf::sched
