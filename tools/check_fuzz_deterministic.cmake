# ctest helper: two fuzz runs with one seed must print byte-identical
# reports (case stream, oracle-check counts, shape coverage). Run as
#   cmake -DDMFSTREAM=<path-to-binary> -P check_fuzz_deterministic.cmake
if(NOT DEFINED DMFSTREAM)
  message(FATAL_ERROR "pass -DDMFSTREAM=<path to dmfstream>")
endif()

function(run_fuzz out_var)
  execute_process(
    COMMAND ${DMFSTREAM} fuzz --iters 40 --seed 7
    OUTPUT_VARIABLE output
    RESULT_VARIABLE status)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "dmfstream fuzz exited with ${status}:\n${output}")
  endif()
  set(${out_var} "${output}" PARENT_SCOPE)
endfunction()

run_fuzz(first)
run_fuzz(second)
if(NOT first STREQUAL second)
  message(FATAL_ERROR "fuzz reports differ between two runs of one seed")
endif()
message(STATUS "fuzz report byte-identical across runs: ${first}")
