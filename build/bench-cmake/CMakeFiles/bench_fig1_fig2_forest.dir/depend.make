# Empty dependencies file for bench_fig1_fig2_forest.
# This may be replaced when dependencies are built.
