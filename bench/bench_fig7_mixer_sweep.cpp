// Reproduces Fig. 7: completion time Tc and storage requirement q versus the
// number of on-chip mixers M, for the PCR master-mix ratio {2:1:1:1:1:1:9}
// with demand D = 32, comparing RMA+MMS against RMA+SRS.
//
// Paper shape: Tc drops steeply as M grows and flattens past the forest's
// parallelism; SRS tracks MMS on time while needing fewer storage units.
#include <iostream>

#include "engine/mdst.h"
#include "protocols/protocols.h"
#include "report/chart.h"
#include "report/table.h"

#include "bench_obs.h"

int main() {
  const dmf::bench::BenchSession benchObs("fig7_mixer_sweep");
  using namespace dmf;

  const Ratio ratio = protocols::pcrMasterMixRatio();
  engine::MdstEngine engine(ratio);

  std::cout << "# Fig. 7 — Tc and q vs number of mixers M (RMA forest, "
               "D = 32)\n\n";

  report::Series tcMms{"RMA+MMS Tc", {}};
  report::Series tcSrs{"RMA+SRS Tc", {}};
  report::Series qMms{"RMA+MMS q", {}};
  report::Series qSrs{"RMA+SRS q", {}};

  report::Table table(
      {"M", "Tc MMS", "Tc SRS", "q MMS", "q SRS"});
  for (unsigned mixers = 1; mixers <= 15; ++mixers) {
    engine::MdstRequest request;
    request.algorithm = mixgraph::Algorithm::RMA;
    request.demand = 32;
    request.mixers = mixers;
    request.scheme = engine::Scheme::kMMS;
    const engine::MdstResult mms = engine.run(request);
    request.scheme = engine::Scheme::kSRS;
    const engine::MdstResult srs = engine.run(request);

    table.addRow({std::to_string(mixers), std::to_string(mms.completionTime),
                  std::to_string(srs.completionTime),
                  std::to_string(mms.storageUnits),
                  std::to_string(srs.storageUnits)});
    tcMms.points.push_back({static_cast<double>(mixers), static_cast<double>(mms.completionTime)});
    tcSrs.points.push_back({static_cast<double>(mixers), static_cast<double>(srs.completionTime)});
    qMms.points.push_back({static_cast<double>(mixers), static_cast<double>(mms.storageUnits)});
    qSrs.points.push_back({static_cast<double>(mixers), static_cast<double>(srs.storageUnits)});
  }

  std::cout << table.render() << "\n(a) Tc vs M:\n"
            << report::renderChart({tcMms, tcSrs}) << "\n(b) q vs M:\n"
            << report::renderChart({qMms, qSrs});
  return 0;
}
