// Mixing graphs: DAGs of (1:1) mix-split operations realizing a target ratio.
//
// A *mixing tree* (MM, RMA, RSM output) is the special case where every node
// has at most two consumers and the underlying shape is a tree; MTCS produces
// a genuine DAG by sharing common sub-mixtures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dmf/mixture_value.h"
#include "dmf/ratio.h"

namespace dmf::mixgraph {

/// Index of a node inside a MixingGraph.
using NodeId = std::uint32_t;

/// Sentinel for "no node" (leaf children).
inline constexpr NodeId kNoNode = 0xFFFFFFFFu;

/// One vertex of a mixing graph: either a *leaf* (a droplet of pure input
/// fluid dispensed from a reservoir) or a *mix node* (one (1:1) mix-split of
/// its two children's droplets).
struct Node {
  /// Exact composition of the droplet(s) this node denotes.
  dmf::MixtureValue value;
  /// Children (operands of the mix-split); kNoNode for leaves.
  NodeId left = kNoNode;
  NodeId right = kNoNode;
  /// Drawing/priority level as in the paper's figures: the root sits at level
  /// d (the accuracy level) and each edge drops one level, so
  /// level = d - (longest distance to the root). Computed by finalize().
  unsigned level = 0;

  [[nodiscard]] bool isLeaf() const { return left == kNoNode; }
};

/// A validated mixing graph for one target ratio.
///
/// Build protocol: construct with the target ratio, add nodes via addLeaf /
/// addMix, then call finalize(root). finalize computes levels, prunes
/// unreachable nodes and validates every invariant; all query methods other
/// than the builder API require a finalized graph.
class MixingGraph {
 public:
  /// Starts an empty graph for `ratio`.
  explicit MixingGraph(Ratio ratio);

  /// Starts an empty multi-target graph: one root per target ratio, shared
  /// intermediates (the SDMT/MDMT generalization). All targets must use the
  /// same fluid space and accuracy level and be pairwise distinct; throws
  /// std::invalid_argument otherwise.
  explicit MixingGraph(std::vector<Ratio> targets);

  // ---- builder API -------------------------------------------------------

  /// Adds a leaf droplet of pure fluid `fluid` (0-based). Leaves are
  /// positional: the same fluid may appear as many leaves.
  NodeId addLeaf(std::size_t fluid);

  /// Adds a mix-split of nodes `left` and `right`. The node's composition is
  /// derived exactly. Throws std::invalid_argument on bad ids or when the two
  /// operand compositions are identical (a no-op mix).
  NodeId addMix(NodeId left, NodeId right);

  /// Declares `root` the target node, prunes nodes unreachable from it,
  /// assigns levels, and validates:
  ///  - the root composition equals the ratio's target composition,
  ///  - every mix node's composition is the exact (1:1) mix of its children,
  ///  - levels strictly decrease along every edge and fit within accuracy d.
  /// Throws std::logic_error on violation. Node ids may be remapped by
  /// pruning; the returned id is the root's final id.
  NodeId finalize(NodeId root);

  /// Multi-target finalize: one root per target ratio (in target order). A
  /// root may be an interior node of another target's tree — that is the
  /// sharing the multi-target engine exploits. Returns the roots' final ids.
  /// Throws std::invalid_argument on a count mismatch or duplicate roots.
  std::vector<NodeId> finalize(std::vector<NodeId> roots);

  // ---- queries (finalized graph) ----------------------------------------

  /// The primary (first) target ratio.
  [[nodiscard]] const Ratio& ratio() const { return targets_.front(); }
  /// All target ratios (size 1 for classic single-target graphs).
  [[nodiscard]] const std::vector<Ratio>& targets() const { return targets_; }
  [[nodiscard]] bool finalized() const { return finalized_; }
  /// The primary root. For multi-target graphs prefer roots().
  [[nodiscard]] NodeId root() const;
  /// All roots, aligned with targets().
  [[nodiscard]] const std::vector<NodeId>& roots() const;
  [[nodiscard]] std::size_t nodeCount() const { return nodes_.size(); }
  [[nodiscard]] const Node& node(NodeId id) const;

  /// Number of leaf nodes (distinct dispense positions).
  [[nodiscard]] std::size_t leafCount() const;
  /// Number of mix nodes — the paper's per-pass mix-split count when the
  /// graph is a tree.
  [[nodiscard]] std::size_t internalCount() const;
  /// Depth of the graph = level of the root = ratio accuracy d.
  [[nodiscard]] unsigned depth() const;

  /// True iff no node has more than one consumer edge (classic mixing tree).
  [[nodiscard]] bool isTree() const;

  /// Node ids ordered by level descending (every parent precedes its
  /// children) — the order demand propagation wants.
  [[nodiscard]] std::vector<NodeId> nodesByLevelDesc() const;

  /// consumers()[v] lists each mix node that uses v as an operand, once per
  /// operand slot.
  [[nodiscard]] const std::vector<std::vector<NodeId>>& consumers() const;

  /// Graphviz dot rendering (values as labels; leaves boxed).
  [[nodiscard]] std::string toDot() const;

 private:
  void requireFinalized(const char* what) const;
  void validateOrThrow() const;

  std::vector<Ratio> targets_;
  std::vector<Node> nodes_;
  std::vector<std::vector<NodeId>> consumers_;
  std::vector<NodeId> roots_;
  bool finalized_ = false;
};

}  // namespace dmf::mixgraph
