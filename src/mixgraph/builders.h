// Base mixing algorithms: given a target ratio, construct a mixing graph
// whose root denotes the target droplet. All four algorithms from the paper's
// comparison (MM, RMA, MTCS, RSM) plus the N=2 dilution special case.
#pragma once

#include <string_view>

#include "dmf/ratio.h"
#include "mixgraph/graph.h"

namespace dmf::mixgraph {

/// Which base mixing algorithm constructs the graph.
enum class Algorithm {
  /// Min-Mix (Thies et al. '08): binary bit-decomposition. Fluid i gets a
  /// leaf at level j for every set bit j of a_i; same-level nodes are paired
  /// bottom-up (earlier-built mixes first, then leaves in fluid order).
  /// Produces the minimum number of input droplets (sum of popcounts).
  MM,
  /// Ratio-ed Mixing Algorithm (Roy et al. VLSID'11), reconstructed as a
  /// recursive balanced partition: the amount multiset (sum 2^k) splits into
  /// two halves of 2^(k-1) by first-fit-decreasing, fragmenting amounts at
  /// the boundary. Fragmentation yields extra leaves, hence more per-pass
  /// waste than MM — the property the DAC'14 engine exploits.
  RMA,
  /// Mixing Tree with Common Subtrees (Kumar et al. DDECS'13), reconstructed
  /// as MM followed by merging nodes with identical (composition, level), so
  /// a shared sub-mixture is prepared once and both of its output droplets
  /// are consumed. Produces a DAG; uses fewer input droplets than MM.
  MTCS,
  /// Reagent-Saving Mixing (Hsieh et al. TCAD'12), reconstructed as the MM
  /// decomposition with a leaf-first pairing order (pure droplets combined
  /// as early as possible). Included for API completeness (Table 1 scope);
  /// not part of the paper's evaluation.
  RSM,
};

/// Human-readable algorithm name ("MM", "RMA", ...).
[[nodiscard]] std::string_view algorithmName(Algorithm algo);

/// Builds a finalized mixing graph with the chosen algorithm.
/// Throws std::invalid_argument / std::logic_error on invalid input.
[[nodiscard]] MixingGraph buildGraph(const Ratio& ratio, Algorithm algo);

/// Min-Mix mixing tree (exact reproduction of the published algorithm).
[[nodiscard]] MixingGraph buildMM(const Ratio& ratio);

/// Balanced-partition mixing tree (RMA reconstruction).
[[nodiscard]] MixingGraph buildRMA(const Ratio& ratio);

/// Common-subtree-sharing mixing DAG (MTCS reconstruction).
[[nodiscard]] MixingGraph buildMTCS(const Ratio& ratio);

/// Leaf-first-pairing mixing tree (RSM reconstruction).
[[nodiscard]] MixingGraph buildRSM(const Ratio& ratio);

/// Multi-target mixing DAG (the SDMT/MDMT generalization of the paper's
/// Table 1): prepares every ratio in `targets` from one shared graph —
/// MTCS-style value sharing applies across targets, and a target that is an
/// intermediate of another is served by the same node. All targets must
/// share fluid space and accuracy and be pairwise distinct.
[[nodiscard]] MixingGraph buildMultiTarget(const std::vector<Ratio>& targets);

/// Dilution special case: a two-fluid target with the sample at concentration
/// `sampleNumerator / 2^accuracy` against a buffer. Equivalent to
/// buildMM(Ratio{sampleNumerator, 2^accuracy - sampleNumerator}).
/// Throws std::invalid_argument when sampleNumerator is 0 or >= 2^accuracy.
[[nodiscard]] MixingGraph buildDilution(std::uint64_t sampleNumerator,
                                        unsigned accuracy);

}  // namespace dmf::mixgraph
