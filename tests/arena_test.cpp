#include "runtime/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

namespace dmf::runtime {
namespace {

TEST(Arena, BumpAllocationIsContiguousAndAligned) {
  Arena arena;
  auto* a = arena.allocate<std::uint64_t>(4);
  auto* b = arena.allocate<std::uint64_t>(4);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  // Same chunk: the second block starts right after the first.
  EXPECT_EQ(b, a + 4);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % alignof(std::uint64_t), 0u);
  // A byte allocation followed by a uint64 allocation must re-align.
  auto* c = arena.allocate<char>(3);
  auto* d = arena.allocate<std::uint64_t>(1);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % alignof(std::uint64_t), 0u);
}

TEST(Arena, AllocationsAreWritable) {
  Arena arena;
  const std::size_t n = 1000;
  auto* block = arena.allocate<std::uint32_t>(n);
  for (std::size_t i = 0; i < n; ++i) {
    block[i] = static_cast<std::uint32_t>(i * 7);
  }
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(block[i], static_cast<std::uint32_t>(i * 7));
  }
}

TEST(Arena, GrowsByAddingChunksAndResetKeepsThem) {
  Arena arena(1024);
  EXPECT_EQ(arena.chunkCount(), 0u);
  (void)arena.allocate<std::byte>(512);
  EXPECT_EQ(arena.chunkCount(), 1u);
  // Oversized request forces a new chunk.
  (void)arena.allocate<std::byte>(8 * 1024);
  EXPECT_GE(arena.chunkCount(), 2u);
  const std::size_t chunksBefore = arena.chunkCount();
  const std::uint64_t allocationsBefore = arena.chunkAllocations();
  arena.reset();
  EXPECT_EQ(arena.chunkCount(), chunksBefore);  // memory retained
  // A warm arena serves the same request pattern without new chunks.
  (void)arena.allocate<std::byte>(512);
  (void)arena.allocate<std::byte>(8 * 1024);
  EXPECT_EQ(arena.chunkAllocations(), allocationsBefore);
}

TEST(Arena, MarkReleaseRewindsInStackOrder) {
  Arena arena(256);
  (void)arena.allocate<std::uint64_t>(4);
  const Arena::Marker m = arena.mark();
  auto* inner = arena.allocate<std::uint64_t>(4);
  arena.release(m);
  // Rewound: the next allocation reuses the released space.
  auto* again = arena.allocate<std::uint64_t>(4);
  EXPECT_EQ(again, inner);
}

TEST(Arena, ScopeReleasesOnDestruction) {
  Arena arena(256);
  auto* before = arena.allocate<std::uint32_t>(2);
  std::uint32_t* inner = nullptr;
  {
    ArenaScope scope(arena);
    inner = scope.arena().allocate<std::uint32_t>(8);
    ASSERT_NE(inner, nullptr);
  }
  auto* after = arena.allocate<std::uint32_t>(8);
  EXPECT_EQ(after, inner);  // scope rewound the bump pointer
  (void)before;
}

TEST(Arena, ArenaVectorUsesArenaStorage) {
  Arena arena(4096);
  ArenaVector<int> v{ArenaAllocator<int>(arena)};
  for (int i = 0; i < 100; ++i) v.push_back(i);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
  EXPECT_GE(arena.chunkCount(), 1u);
}

TEST(Arena, ScratchArenaIsStablePerThread) {
  Arena& a = scratchArena();
  Arena& b = scratchArena();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace dmf::runtime
