#include "sched/schedulers.h"

#include <gtest/gtest.h>

#include <iostream>
#include <stdexcept>

#include "mixgraph/builders.h"
#include "sched/gantt.h"
#include "sched/schedule.h"
#include "workload/ratio_corpus.h"

namespace dmf::sched {
namespace {

using forest::TaskForest;
using mixgraph::Algorithm;
using mixgraph::buildGraph;
using mixgraph::buildMM;
using mixgraph::MixingGraph;

Ratio pcr() { return Ratio({2, 1, 1, 1, 1, 1, 9}); }

TEST(Oms, BaseTreeMatchesPaperSection5) {
  // Paper section 5: the MM base tree of the PCR ratio completes in d = 4
  // cycles and needs Mlb = 3 mixers for that.
  MixingGraph g = buildMM(pcr());
  TaskForest pass(g, 2);
  EXPECT_EQ(criticalPathLength(pass), 4u);
  EXPECT_EQ(minimumMixers(pass), 3u);
  const Schedule s = scheduleOMS(pass, 3);
  EXPECT_EQ(s.completionTime, 4u);
  validateOrThrow(pass, s);
}

TEST(Oms, SingleMixerSerializesEverything) {
  MixingGraph g = buildMM(pcr());
  TaskForest pass(g, 2);
  const Schedule s = scheduleOMS(pass, 1);
  EXPECT_EQ(s.completionTime, pass.taskCount());
  validateOrThrow(pass, s);
}

TEST(Schedulers, RejectZeroMixers) {
  MixingGraph g = buildMM(pcr());
  TaskForest pass(g, 2);
  EXPECT_THROW(scheduleMMS(pass, 0), std::invalid_argument);
  EXPECT_THROW(scheduleSRS(pass, 0), std::invalid_argument);
  EXPECT_THROW(scheduleOMS(pass, 0), std::invalid_argument);
}

TEST(Srs, Figure3Demand20ThreeMixers) {
  // Paper Fig. 3 / Fig. 4: the D=20 forest scheduled by SRS with 3 mixers
  // completes in Tc = 11 cycles using q = 5 storage units. Our SRS lands on
  // the same storage requirement, one cycle later (Tc = 12) — the engines
  // differ in tie-breaking, not in the trade-off.
  MixingGraph g = buildMM(pcr());
  TaskForest f(g, 20);
  const Schedule s = scheduleSRS(f, 3);
  validateOrThrow(f, s);
  EXPECT_EQ(countStorage(f, s), 5u);
  // 27 mix-splits on 3 mixers cannot beat ceil(27/3) = 9 cycles.
  EXPECT_GE(s.completionTime, 9u);
  EXPECT_LE(s.completionTime, 13u);
}

TEST(Mms, Figure3ForestValidAndFast) {
  MixingGraph g = buildMM(pcr());
  TaskForest f(g, 20);
  const Schedule s = scheduleMMS(f, 3);
  validateOrThrow(f, s);
  // MMS packs all 27 mix-splits into the 9-cycle lower bound here, at the
  // cost of more storage than SRS.
  EXPECT_EQ(s.completionTime, 9u);
  EXPECT_EQ(countStorage(f, s), 6u);
}

TEST(Srs, NeverUsesMoreStorageThanMmsOnPcrSweep) {
  // The paper's claim (section 4.2.2): SRS trades a little completion time
  // for fewer storage units than MMS.
  MixingGraph g = buildMM(pcr());
  for (std::uint64_t demand : {8u, 16u, 20u, 32u}) {
    TaskForest f(g, demand);
    const Schedule mms = scheduleMMS(f, 3);
    const Schedule srs = scheduleSRS(f, 3);
    EXPECT_LE(countStorage(f, srs), countStorage(f, mms)) << "D=" << demand;
    EXPECT_GE(srs.completionTime, mms.completionTime) << "D=" << demand;
  }
}

TEST(SrsGreedy, LiteralAlgorithm2IsValid) {
  MixingGraph g = buildMM(pcr());
  TaskForest f(g, 20);
  const Schedule s = scheduleSRSGreedy(f, 3);
  validateOrThrow(f, s);
  EXPECT_GE(s.completionTime, 9u);
}

TEST(StorageCapped, RespectsTheCap) {
  MixingGraph g = buildMM(pcr());
  TaskForest f(g, 20);
  for (unsigned cap : {5u, 6u, 8u, 20u}) {
    const Schedule s = scheduleStorageCapped(f, 3, cap);
    validateOrThrow(f, s);
    EXPECT_LE(countStorage(f, s), cap) << "cap=" << cap;
  }
}

TEST(StorageCapped, TighterCapsCostCycles) {
  MixingGraph g = buildMM(pcr());
  TaskForest f(g, 20);
  const Schedule loose = scheduleStorageCapped(f, 3, 20);
  const Schedule tight = scheduleStorageCapped(f, 3, 5);
  EXPECT_LE(loose.completionTime, tight.completionTime);
}

TEST(StorageCapped, ImpossibleCapThrows) {
  MixingGraph g = buildMM(pcr());
  TaskForest f(g, 20);
  EXPECT_THROW(scheduleStorageCapped(f, 3, 0), std::runtime_error);
  EXPECT_THROW(scheduleStorageCapped(f, 0, 5), std::invalid_argument);
}

TEST(StorageCapped, GenerousCapMatchesUncappedSpeed) {
  MixingGraph g = buildMM(pcr());
  TaskForest f(g, 3);
  const Schedule uncapped = scheduleOMS(f, 3);
  const Schedule capped = scheduleStorageCapped(f, 3, 100);
  EXPECT_LE(capped.completionTime, uncapped.completionTime + 2);
}

TEST(Storage, EmptyStorageWhenChainIsTight) {
  // Two-fluid one-mix tree: the only task has no stored droplets.
  MixingGraph g = buildMM(Ratio({1, 1}));
  TaskForest f(g, 2);
  const Schedule s = scheduleOMS(f, 1);
  EXPECT_EQ(countStorage(f, s), 0u);
}

TEST(Storage, CountsParkedDroplets) {
  // Serialize the PCR base tree on one mixer: intermediates must wait, so
  // storage is needed.
  MixingGraph g = buildMM(pcr());
  TaskForest f(g, 2);
  const Schedule s = scheduleOMS(f, 1);
  EXPECT_GT(countStorage(f, s), 0u);
  const auto profile = storageProfile(f, s);
  EXPECT_EQ(profile.size(), s.completionTime + 1u);
}

TEST(Storage, BaselineStorageBoundHolds) {
  // Paper section 4.2: a base tree scheduled with Mc mixers needs roughly
  // d - (log2 Mc + 1) storage units; with Mlb mixers that is a small number.
  MixingGraph g = buildMM(pcr());
  TaskForest f(g, 2);
  const Schedule s = scheduleOMS(f, 3);
  EXPECT_LE(countStorage(f, s), 4u);
}

TEST(Emission, TwentyTargetsEmitted) {
  MixingGraph g = buildMM(pcr());
  TaskForest f(g, 20);
  const Schedule s = scheduleSRS(f, 3);
  const auto cycles = emissionCycles(f, s);
  ASSERT_EQ(cycles.size(), 20u);
  EXPECT_EQ(cycles.back(), s.completionTime);
  EXPECT_TRUE(std::is_sorted(cycles.begin(), cycles.end()));
}

TEST(Validate, DetectsPrecedenceViolation) {
  MixingGraph g = buildMM(pcr());
  TaskForest f(g, 2);
  Schedule s = scheduleOMS(f, 3);
  // Move the root mix to cycle 1: its operands are no longer earlier.
  for (forest::TaskId id = 0; id < f.taskCount(); ++id) {
    if (f.task(id).node == g.root()) s.cycles[id] = 1;
  }
  EXPECT_THROW(validateOrThrow(f, s), std::logic_error);
}

TEST(Validate, DetectsMixerOverlap) {
  MixingGraph g = buildMM(pcr());
  TaskForest f(g, 2);
  Schedule s = scheduleOMS(f, 3);
  // Force every task onto mixer 0 — cycle/mixer collisions appear.
  bool collision = false;
  for (auto& mixer : s.mixers) {
    if (mixer != 0) {
      mixer = 0;
      collision = true;
    }
  }
  ASSERT_TRUE(collision);
  EXPECT_THROW(validateOrThrow(f, s), std::logic_error);
}

TEST(Gantt, RendersEveryMixerRow) {
  MixingGraph g = buildMM(pcr());
  TaskForest f(g, 20);
  const Schedule s = scheduleSRS(f, 3);
  const std::string chart = renderGantt(f, s);
  EXPECT_NE(chart.find("M1"), std::string::npos);
  EXPECT_NE(chart.find("M3"), std::string::npos);
  EXPECT_NE(chart.find("store"), std::string::npos);
  EXPECT_NE(chart.find("emit"), std::string::npos);
}

// Parameterized validity sweep: every scheduler produces a valid schedule on
// corpus forests for several mixer counts, and more mixers never hurt much.
struct SchedSweepParam {
  Algorithm algorithm;
  unsigned mixers;
};

class SchedulerCorpusTest
    : public ::testing::TestWithParam<SchedSweepParam> {};

TEST_P(SchedulerCorpusTest, ValidSchedulesOnCorpus) {
  const auto& corpus = workload::evaluationCorpus();
  for (std::size_t i = 0; i < corpus.size(); i += 97) {
    const Ratio& r = corpus[i];
    MixingGraph g = buildGraph(r, GetParam().algorithm);
    TaskForest f(g, 32);
    for (const Schedule& s :
         {scheduleMMS(f, GetParam().mixers), scheduleSRS(f, GetParam().mixers),
          scheduleOMS(f, GetParam().mixers)}) {
      validateOrThrow(f, s);
      EXPECT_GE(s.completionTime, criticalPathLength(f)) << r.toString();
      EXPECT_GE(s.completionTime,
                (f.taskCount() + GetParam().mixers - 1) / GetParam().mixers)
          << r.toString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SchedulerCorpusTest,
    ::testing::Values(SchedSweepParam{Algorithm::MM, 1},
                      SchedSweepParam{Algorithm::MM, 2},
                      SchedSweepParam{Algorithm::MM, 4},
                      SchedSweepParam{Algorithm::RMA, 3},
                      SchedSweepParam{Algorithm::MTCS, 3}),
    [](const auto& paramInfo) {
      return std::string(mixgraph::algorithmName(paramInfo.param.algorithm)) +
             "_M" + std::to_string(paramInfo.param.mixers);
    });

}  // namespace
}  // namespace dmf::sched
