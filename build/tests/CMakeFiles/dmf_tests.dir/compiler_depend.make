# Empty compiler generated dependencies file for dmf_tests.
# This may be replaced when dependencies are built.
