// Process-global observability session: a MetricsRegistry + TraceRecorder
// pair installed for the duration of an obs::Scope.
//
// Design constraints (see DESIGN.md §9):
//  * disabled is the default and must be near-free — every helper below
//    starts with a single relaxed atomic load of the session pointer and
//    branches out before touching a clock, a mutex, or a string;
//  * instrumentation must never change behaviour — it only observes, so the
//    planner's `--jobs N` byte-identical guarantee holds with tracing on;
//  * one session at a time — nested Scope installation throws (there is no
//    meaningful merge of two sessions' files).
#pragma once

#include <atomic>
#include <cstdint>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace dmf::obs {

/// The sinks of one observability session.
struct Session {
  MetricsRegistry metrics;
  TraceRecorder trace;
  /// When false the session collects metrics only: tracer() reports off and
  /// spans are not recorded. A long-running daemon keeps live counters for
  /// scraping without accumulating trace events forever.
  bool traceEnabled = true;
};

namespace detail {
extern std::atomic<Session*> g_session;

/// The calling thread's innermost active span context ({0,0} when none).
/// Thread-local storage lives in scope.cpp; access is branch-free.
[[nodiscard]] SpanContext& currentContextSlot() noexcept;
}  // namespace detail

/// RAII installer: the session is globally visible between construction and
/// destruction. Throws std::logic_error if a Scope is already active.
class Scope {
 public:
  explicit Scope(Session& session);
  ~Scope();

  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;
};

/// True while a Scope is active.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_session.load(std::memory_order_acquire) != nullptr;
}

/// The active session's registry, or nullptr when observability is off.
[[nodiscard]] inline MetricsRegistry* metrics() noexcept {
  Session* s = detail::g_session.load(std::memory_order_acquire);
  return s == nullptr ? nullptr : &s->metrics;
}

/// The active session's trace recorder, or nullptr when observability is off
/// (or the session is metrics-only).
[[nodiscard]] inline TraceRecorder* tracer() noexcept {
  Session* s = detail::g_session.load(std::memory_order_acquire);
  return s == nullptr || !s->traceEnabled ? nullptr : &s->trace;
}

/// Bumps a named counter in the active registry; no-op when disabled.
inline void count(const char* name, std::uint64_t delta = 1) {
  if (MetricsRegistry* m = metrics()) m->counter(name).add(delta);
}

/// Raises a named high-water gauge; no-op when disabled.
inline void gaugeMax(const char* name, std::uint64_t value) {
  if (MetricsRegistry* m = metrics()) m->gauge(name).accumulateMax(value);
}

/// Sets a named last-value gauge; no-op when disabled.
inline void gaugeSet(const char* name, std::uint64_t value) {
  if (MetricsRegistry* m = metrics()) m->gauge(name).set(value);
}

/// The calling thread's innermost active span context. Zero ids when no span
/// is open (or tracing is off). Capture this before handing work to another
/// thread and adopt it there with a ContextGuard, so the worker's spans
/// splice into the originating request's trace.
[[nodiscard]] inline SpanContext currentContext() noexcept {
  return detail::currentContextSlot();
}

/// RAII adoption of a span context on the current thread (cross-thread
/// propagation: request thread -> pool worker, coalescing leader -> queued
/// computation). Restores the previous context on destruction. Safe (and
/// near-free) when tracing is off — it only swaps two thread-local words.
class ContextGuard {
 public:
  explicit ContextGuard(const SpanContext& adopt) noexcept
      : previous_(detail::currentContextSlot()) {
    detail::currentContextSlot() = adopt;
  }
  ~ContextGuard() { detail::currentContextSlot() = previous_; }

  ContextGuard(const ContextGuard&) = delete;
  ContextGuard& operator=(const ContextGuard&) = delete;

 private:
  SpanContext previous_;
};

/// RAII wall-clock span on the calling thread's trace track. Latches the
/// recorder at construction: when tracing is off this is two null checks and
/// no clock read.
///
/// With tracing on, every Span is a node in the request tree: it adopts the
/// thread's current context as its parent (a fresh trace id when there is
/// none), installs itself as the current context for its lifetime, and
/// records trace/span/parent ids with the event.
class Span {
 public:
  explicit Span(const char* name, const char* category = "engine") noexcept
      : recorder_(tracer()), name_(name), category_(category) {
    if (recorder_ != nullptr) {
      start_ = recorder_->nowNanos();
      SpanContext& current = detail::currentContextSlot();
      parent_ = current;
      context_.traceId =
          parent_.traceId != 0 ? parent_.traceId : recorder_->newId();
      context_.spanId = recorder_->newId();
      current = context_;
    }
  }

  ~Span() {
    if (recorder_ != nullptr) {
      detail::currentContextSlot() = parent_;
      recorder_->completeEvent(name_, category_, start_,
                               recorder_->nowNanos() - start_, context_,
                               parent_.spanId, std::move(args_));
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// This span's identity (zero ids when tracing is off).
  [[nodiscard]] const SpanContext& context() const noexcept {
    return context_;
  }

  /// Attaches a string argument to the recorded event (no-op when tracing
  /// is off — callers may build the value behind `if (obs::tracer())`).
  Span& arg(const char* key, std::string value) {
    if (recorder_ != nullptr) args_.emplace_back(key, std::move(value));
    return *this;
  }

 private:
  TraceRecorder* recorder_;
  const char* name_;
  const char* category_;
  std::uint64_t start_ = 0;
  SpanContext context_;
  SpanContext parent_;
  std::vector<std::pair<std::string, std::string>> args_;
};

}  // namespace dmf::obs
